"""Compiled simulation engine: batched, vectorized re-simulation.

The interpreted engine walks every sample through the Python
``Sig``/``Expr`` hot path — flexible, but each monitored assignment
costs microseconds of pure dispatch.  This package trades that
per-sample Python for per-sample *NumPy*: it records one stub run of
the design as a straight-line instruction tape
(:mod:`repro.compile.tape`), freezes the tape into vector closures over
a ``(B,)`` **batch axis** (:mod:`repro.compile.executor`), and then
simulates all ``B`` (seed, parameter-point, dtype-assignment) variants
of a group in one pass — bit-identically to running each variant
through the interpreted engine.

Entry points
------------
* ``run_simulations(..., engine="compiled")``
  (:mod:`repro.parallel.runner`) — the normal route: eligible configs
  are grouped and batched here, everything else (and every group the
  compiler refuses) falls back to the interpreted path automatically.
* :func:`compile_design` — a direct handle used by tools and
  benchmarks: ``compile_design(factory).run(configs)``.

Eligibility and grouping
------------------------
Configs batch together when they share ``(n_samples, seed,
factory_seed, overflow_action, guard_action)`` — everything that shapes
the control flow and stimulus of the stub run.  Within a group, lanes
may differ arbitrarily in ``label``, ``dtypes``, ``ranges`` and
``catch_errors``.  A config is *ineligible* (never batched, silently
interpreted) when it carries faults, ``error()`` annotations, a
deadline, a dtype with ``n > 53``, or while
:mod:`repro.obs.metrics` collection is enabled.

Fallback semantics
------------------
Lowering is conservative: any construct the vector engine cannot
reproduce bit-exactly — value-dependent control flow (``if w > 0:``
over signals), signals created inside ``run()``, cross-sample
expression caching, division by zero, non-finite values, error-mode
overflow under ``overflow_action="raise"`` — raises
:class:`CompileFallback`.  The driver then re-runs every config of the
group through the interpreted ``_execute`` path (identical to
``engine="interpreted"``), records a ``DG209`` diagnostic and bumps the
``compile.fallbacks`` counter.  Results are therefore *always* the
interpreted engine's results; the compiled path is purely an
accelerator.

Known contract caveats (documented in ``docs/compilation.md``): design
code that reads ``.fx``/``.fl`` as plain floats observes the stub's
scalar values (fine for logging, wrong to feed back into signals — the
relational/bool hooks catch the feedback cases that steer control
flow), and the per-entry ``DesignContext.overflow_log`` is not
reproduced (``overflow_count`` per signal is exact; no library consumer
reads the log entries).
"""

from __future__ import annotations

import numpy as np

from repro.compile.executor import BatchExecutor
from repro.compile.tape import (CompileFallback, StubContext, TapeStreamer,
                                value_branch_guard)
from repro.obs import counters as obs_counters
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.signal.context import DesignContext

__all__ = ["COMPILER_VERSION", "CompileFallback", "CompiledSim",
           "compile_design", "config_eligible", "group_key",
           "run_compiled_pending"]

#: Version of the lowering scheme; part of the cache/journal fingerprint
#: of compiled runs, so a future compiler change can never serve stale
#: cached outcomes.  Bump on any change to tape/executor semantics.
COMPILER_VERSION = 1


def config_eligible(cfg):
    """True when ``cfg`` can join a compiled batch at all."""
    if cfg.faults or cfg.errors or cfg.deadline_seconds is not None:
        return False
    for dt in cfg.dtypes.values():
        if dt is not None and dt.n > 53:
            return False
    return True


def group_key(cfg):
    """Batch key: everything that shapes the stub run's control flow."""
    return (cfg.n_samples, cfg.seed, cfg.factory_seed,
            cfg.overflow_action, cfg.guard_action)


def _build_lane(design_factory, seeded_factory, cfg):
    """Mirror ``_execute``'s setup phase for one lane (build, no run)."""
    from repro.refine.flow import Annotations

    ctx = DesignContext(cfg.label, seed=cfg.seed,
                        overflow_action=cfg.overflow_action,
                        guard_action=cfg.guard_action)
    with ctx:
        if cfg.factory_seed is not None and seeded_factory is not None:
            design = seeded_factory(cfg.factory_seed)
        else:
            design = design_factory()
        design.build(ctx)
        Annotations(dtypes=cfg.dtypes, ranges=cfg.ranges,
                    errors=cfg.errors).apply(ctx)
    return ctx, design


def _run_group(design_factory, seeded_factory, cfgs):
    """Compile and run one batch; returns (outcomes, n_instructions).

    Raises :class:`CompileFallback` (or lets any unexpected exception
    surface as one via the caller) when the group cannot be lowered.
    """
    from repro.refine.monitors import collect
    from repro.parallel.runner import SimOutcome

    base = cfgs[0]
    lanes = [_build_lane(design_factory, seeded_factory, cfg)
             for cfg in cfgs]
    exe = BatchExecutor([ctx for ctx, _ in lanes], base.overflow_action)

    # The stub re-runs the same build (same factory seed, same context
    # seed — so ctx.rng draws the sequence every lane would draw) and
    # streams its run() through the tape.  It gets *no* annotations:
    # stub values feed only guarded control flow and streamed constants,
    # neither of which annotations may touch.
    stub_ctx = StubContext(base.label, seed=base.seed,
                           overflow_action=base.overflow_action,
                           guard_action=base.guard_action)
    with stub_ctx:
        if base.factory_seed is not None and seeded_factory is not None:
            stub_design = seeded_factory(base.factory_seed)
        else:
            stub_design = design_factory()
        stub_design.build(stub_ctx)
    streamer = TapeStreamer(exe)
    stub_ctx.tracer = streamer
    stub_ctx.streamer = streamer
    try:
        # Scalar Python float arithmetic overflows silently to inf where
        # NumPy would emit RuntimeWarnings; silence them so the vector
        # path warns exactly as much as the interpreted path (never) —
        # non-finite values are caught explicitly and fall back.
        with np.errstate(over="ignore", invalid="ignore",
                         divide="ignore", under="ignore"):
            with value_branch_guard():
                with stub_ctx:
                    stub_design.run(stub_ctx, base.n_samples)
            streamer.finalize()
    except CompileFallback:
        raise
    except Exception as exc:
        # Anything the stub run raises, the interpreted re-run will
        # raise (or catch) identically — with per-config catch_errors
        # semantics the vector engine cannot reproduce lane-by-lane.
        raise CompileFallback(
            "stub run raised %s: %s" % (type(exc).__name__, exc)) from exc

    exe.write_back()
    outcomes = []
    for cfg, (ctx, design) in zip(cfgs, lanes):
        ctx.cycle = stub_ctx.cycle
        records = collect(ctx)
        obs_metrics.emit(ctx, label=cfg.label)
        outcomes.append(SimOutcome(cfg.label, records,
                                   getattr(design, "output", None),
                                   0, (), None))
    return outcomes, len(streamer.tape)


def run_compiled_pending(design_factory, seeded_factory, pending,
                         on_complete, diagnostics, execute_fn):
    """Batch-execute the eligible jobs of a pending list.

    ``pending`` is the runner's ``[(idx, key, cfg), ...]`` work list;
    completed jobs are delivered through ``on_complete(idx, key, cfg,
    outcome)`` exactly like the interpreted paths.  Returns the jobs
    that must still run interpreted (ineligible ones — fallen-back
    groups are re-run here via ``execute_fn`` and do not return).
    """
    if obs_metrics.enabled():
        obs_counters.inc("compile.ineligible", len(pending))
        return pending

    leftover = []
    groups = {}
    for job in pending:
        cfg = job[2]
        if config_eligible(cfg):
            groups.setdefault(group_key(cfg), []).append(job)
        else:
            leftover.append(job)
    if leftover:
        obs_counters.inc("compile.ineligible", len(leftover))

    for key, jobs in groups.items():
        cfgs = [cfg for _idx, _key, cfg in jobs]
        with obs_trace.span("compile.batch", lanes=len(cfgs),
                            samples=key[0]) as sp:
            try:
                outcomes, n_instr = _run_group(design_factory,
                                               seeded_factory, cfgs)
            except CompileFallback as exc:
                obs_counters.inc("compile.fallbacks")
                sp.set(fallback=str(exc))
                sp.event("compile.fallback", reason=str(exc))
                if diagnostics is not None:
                    diagnostics.add(
                        "compile-fallback", "info", None,
                        "compiled batch of %d lanes fell back to the "
                        "interpreted engine: %s" % (len(cfgs), exc))
                for idx, jkey, cfg in jobs:
                    on_complete(idx, jkey, cfg, execute_fn(cfg))
                continue
            obs_counters.inc("compile.batches")
            obs_counters.inc("compile.lanes", len(cfgs))
            obs_counters.inc("compile.samples", key[0] * len(cfgs))
            sp.set(instructions=n_instr)
            for (idx, jkey, cfg), outcome in zip(jobs, outcomes):
                on_complete(idx, jkey, cfg, outcome)
    return leftover


class CompiledSim:
    """Handle for compiling and batch-running one design factory.

    Thin convenience wrapper over ``run_simulations(engine="compiled")``
    — grouping, fallback and caching behave exactly as there.
    """

    def __init__(self, design_factory, base_config=None,
                 seeded_factory=None):
        from repro.parallel.runner import SimConfig

        self.design_factory = design_factory
        self.seeded_factory = seeded_factory
        self.base_config = base_config if base_config is not None \
            else SimConfig()

    def run(self, configs=None, **kwargs):
        """Simulate ``configs`` (default: the base config) batched.

        Extra keyword arguments are forwarded to
        :func:`repro.parallel.runner.run_simulations`.
        """
        from repro.parallel.runner import run_simulations

        if configs is None:
            configs = [self.base_config]
        return run_simulations(self.design_factory, configs,
                               seeded_factory=self.seeded_factory,
                               engine="compiled", **kwargs)

    def describe(self):
        """Probe lowerability of the base config (1-lane trial compile).

        Returns a dict: ``lowered`` (bool), ``instructions`` (tape
        length when lowered), ``reason`` (fallback reason otherwise),
        ``signals`` and ``compiler_version``.
        """
        cfg = self.base_config
        info = {"compiler_version": COMPILER_VERSION,
                "eligible": config_eligible(cfg)}
        if not info["eligible"]:
            info.update(lowered=False,
                        reason="config ineligible for batching")
            return info
        try:
            outcomes, n_instr = _run_group(self.design_factory,
                                           self.seeded_factory, [cfg])
        except CompileFallback as exc:
            info.update(lowered=False, reason=str(exc))
            return info
        info.update(lowered=True, instructions=n_instr,
                    signals=len(outcomes[0].records), reason=None)
        return info


def compile_design(design_factory, base_config=None, seeded_factory=None):
    """Compile a design factory into a batch-simulation handle.

    >>> from repro.dsp.lms import LmsEqualizerDesign
    >>> sim = compile_design(LmsEqualizerDesign)
    >>> sim.describe()["lowered"]
    True
    """
    return CompiledSim(design_factory, base_config=base_config,
                       seeded_factory=seeded_factory)
