"""Batched vector executor for frozen instruction tapes.

One :class:`BatchExecutor` owns the structure-of-arrays state of ``B``
simulation lanes — one per :class:`~repro.parallel.runner.SimConfig` in
a compiled group.  :func:`capture` lifts the per-lane scalar signal
state (values, monitors, propagated ranges) of ``B`` identically-built
:class:`~repro.signal.context.DesignContext` objects into ``(B,)``
vectors; :meth:`BatchExecutor.freeze` compiles the recorded tape
(:mod:`repro.compile.tape`) into a straight-line list of NumPy closures;
:meth:`BatchExecutor.run_sample` executes them once per clock tick; and
:meth:`BatchExecutor.write_back` scatters the final vector state back
into the lane contexts so :func:`repro.refine.monitors.collect` sees
exactly what an interpreted run would have left behind.

Bit-identity argument
---------------------
Every closure is a transcription of the corresponding scalar code in
:meth:`repro.signal.signal.Sig._record` / :mod:`repro.signal.expr` /
:mod:`repro.signal.ops` into elementwise float64 NumPy, in the same
operation order (see :mod:`repro.compile.vectorops`).  IEEE-754 double
arithmetic is deterministic, so per lane the vectors hold the same bits
the interpreted engine computes.  Anywhere the scalar path could raise,
branch per-value, or otherwise diverge (division by zero, non-finite
values, error-mode overflow under ``overflow_action="raise"``,
frac-bits probe overflow, NaN interval bounds), the executor raises
:class:`~repro.compile.tape.CompileFallback` instead and the driver
re-runs the whole group interpreted — conservative, never wrong.

Interval versioning
-------------------
Interval (range-propagation) arithmetic is gated behind monotonic
version counters: an op recomputes its bounds only when some operand's
interval actually changed.  Read slots alias the *live* per-signal
``read_lo``/``read_hi`` vectors — mirroring the interpreted engine,
where a signal read exposes the live ``_read_ival`` object — so a
version bump observed one op later still computes on current bounds.
For fully-typed designs every read interval is static and steady-state
interval cost is near zero.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compile.tape import CompileFallback
from repro.compile.vectorops import (IV_FNS, QuantGroup, VRange, VStat,
                                     build_quant_plan, iv_vclip, iv_vscale,
                                     iv_vunion, vrange_update, vstat_update)
from repro.core.dtype import DType
from repro.core.interval import fast_interval, iv_add, iv_mul, iv_neg, iv_sub

__all__ = ["BatchExecutor"]


class _Slot:
    """Runtime value of one tape instruction.

    ``fx``/``fl`` are floats (consts, all-scalar ops) or ``(B,)`` arrays
    — scalar/vector-ness is static after freeze.  ``lo``/``hi`` carry
    the propagated interval, ``ver`` its monotonic version.
    """

    __slots__ = ("fx", "fl", "lo", "hi", "ver")

    def __init__(self):
        self.fx = 0.0
        self.fl = 0.0
        self.lo = math.inf
        self.hi = -math.inf
        self.ver = 0


class _SigState:
    """Structure-of-arrays state of one signal across all lanes."""

    __slots__ = (
        "name", "is_reg", "sigs", "fx", "fl", "pend_fx", "pend_fl",
        "has_pending", "rs", "ec", "ep", "vs", "ovf", "plan", "gbufs",
        "prop_lo", "prop_hi", "not_forced", "all_unforced", "sat_lo",
        "sat_hi", "has_sat", "read_lo", "read_hi", "read_ver", "dyn_mask",
        "any_dyn", "assigned",
    )


def _uniform(name, what, values):
    first = values[0]
    for v in values[1:]:
        if v != first:
            raise CompileFallback(
                "signal %r: %s differs between lanes (%r vs %r)"
                % (name, what, first, v))
    return first


def _vec(values):
    return np.asarray(values, dtype=np.float64)


def _capture_signal(name, sigs):
    """Vectorize one signal's per-lane state (or refuse)."""
    st = _SigState()
    st.name = name
    st.sigs = sigs
    st.is_reg = _uniform(name, "register-ness",
                         [s.is_register for s in sigs])
    for s in sigs:
        if s._forced_error is not None:
            raise CompileFallback(
                "signal %r carries an error() annotation" % name)
        if s._fault_pre is not None or s._fault_post is not None:
            raise CompileFallback(
                "signal %r carries fault-injection hooks" % name)
        if s._history is not None:
            raise CompileFallback("signal %r records history" % name)
        if s._obs is not None:
            raise CompileFallback(
                "signal %r carries observability counters" % name)
    st.fx = _vec([s._fx for s in sigs])
    st.fl = _vec([s._fl for s in sigs])
    if st.is_reg:
        st.pend_fx = _vec([s._pend_fx for s in sigs])
        st.pend_fl = _vec([s._pend_fl for s in sigs])
        st.has_pending = _uniform(name, "pending-register state",
                                  [s._has_pending for s in sigs])
    else:
        st.pend_fx = st.pend_fl = None
        st.has_pending = False

    rc = _uniform(name, "range-monitor count",
                  [s.range_stat.count for s in sigs])
    st.rs = VRange(rc, _vec([s.range_stat.min for s in sigs]),
                   _vec([s.range_stat.max for s in sigs]),
                   np.asarray([s.range_stat.frac_bits for s in sigs],
                              dtype=np.int32))
    for attr in ("err_consumed", "err_produced", "val_stat"):
        stats = [getattr(s, attr) for s in sigs]
        count = _uniform(name, "%s count" % attr, [t.count for t in stats])
        vst = VStat(count, _vec([t.mean for t in stats]),
                    _vec([t._m2 for t in stats]),
                    _vec([t.max_abs for t in stats]))
        setattr(st, {"err_consumed": "ec", "err_produced": "ep",
                     "val_stat": "vs"}[attr], vst)
    st.ovf = np.asarray([s.overflow_count for s in sigs], dtype=np.int64)

    st.plan = build_quant_plan([s.dtype for s in sigs])
    st.gbufs = []
    for g in st.plan.groups:
        if g.idx is None:
            st.gbufs.append(None)
        else:
            k = len(g.idx)
            st.gbufs.append((np.empty(k), np.empty(k), np.empty(k),
                             np.empty(k, dtype=bool),
                             np.empty(k, dtype=bool)))

    st.prop_lo = _vec([s._prop_ival.lo for s in sigs])
    st.prop_hi = _vec([s._prop_ival.hi for s in sigs])
    st.not_forced = np.asarray([s._forced_range is None for s in sigs],
                               dtype=bool)
    st.all_unforced = bool(st.not_forced.all())
    st.sat_lo = _vec([s._sat_lo if s._sat_lo is not None else -math.inf
                      for s in sigs])
    st.sat_hi = _vec([s._sat_hi if s._sat_hi is not None else math.inf
                      for s in sigs])
    st.has_sat = any(s._sat_lo is not None for s in sigs)
    ivs = [s.read_interval() for s in sigs]
    st.read_lo = _vec([iv.lo for iv in ivs])
    st.read_hi = _vec([iv.hi for iv in ivs])
    st.read_ver = 0
    st.dyn_mask = np.asarray(
        [s.dtype is None and s._forced_range is None for s in sigs],
        dtype=bool)
    st.any_dyn = bool(st.dyn_mask.any())
    st.assigned = False
    return st


def _scalar_interval(lo, hi):
    return fast_interval(lo, hi)


class BatchExecutor:
    """Vector state + frozen program of one compiled simulation group."""

    def __init__(self, lane_ctxs, overflow_action):
        self.lane_ctxs = lane_ctxs
        self.B = len(lane_ctxs)
        self.overflow_raise = overflow_action == "raise"

        names = lane_ctxs[0].signal_names()
        for ctx in lane_ctxs[1:]:
            if ctx.signal_names() != names:
                raise CompileFallback(
                    "lanes declare different signal sets")
        self.names = names
        self.states = {
            name: _capture_signal(name, [ctx.get(name) for ctx in lane_ctxs])
            for name in names}
        reg_names = [r.name for r in lane_ctxs[0]._registers]
        self._reg_states = [self.states[n] for n in reg_names]

        B = self.B
        self.acc = np.zeros(B)                # non-finite guard accumulator
        self.s1 = np.empty(B)
        self.s2 = np.empty(B)
        self.d1 = np.empty(B)
        self.codes = np.empty(B)
        self.qbuf = np.empty(B)
        self.ilo = np.empty(B)
        self.ihi = np.empty(B)
        self.mb = np.empty(B, dtype=bool)
        self.mb2 = np.empty(B, dtype=bool)

        self._ver = 0
        self.slots = None
        self._prog = None           # dense closure list (full sample)
        self._prog_aligned = None   # tape-index-aligned, None entries
        self.samples = 0

    def _next_ver(self):
        self._ver += 1
        return self._ver

    # -- tape interface ---------------------------------------------------

    def set_const(self, i, value):
        """Record-time constant changed value in a later sample."""
        slot = self.slots[i]
        if slot.fx != value:
            slot.fx = slot.fl = value
            slot.lo = slot.hi = value
            slot.ver = self._next_ver()

    def freeze(self, tape):
        """Compile the recorded tape into the closure program."""
        assigned = {ins.name for ins in tape
                    if ins.kind == "assign" and not ins.is_register}
        for name in assigned:
            st = self.states.get(name)
            if st is not None:
                st.assigned = True
        self.slots = [_Slot() for _ in tape]
        self._is_vec = [False] * len(tape)
        aligned = []
        for i, ins in enumerate(tape):
            kind = ins.kind
            if kind == "const":
                slot = self.slots[i]
                slot.fx = slot.fl = ins.value
                slot.lo = slot.hi = ins.value
                slot.ver = self._next_ver()
                aligned.append(None)
            elif kind == "read":
                aligned.append(self._freeze_read(i, ins))
            elif kind == "op":
                aligned.append(self._freeze_op(i, ins))
            else:   # assign
                aligned.append(self._freeze_assign(ins))
        self._prog_aligned = aligned
        self._prog = [fn for fn in aligned if fn is not None]

    def run_sample(self, n=None, commit=True):
        """Execute one (possibly partial) sample across all lanes."""
        if n is None:
            for fn in self._prog:
                fn()
        else:
            for fn in self._prog_aligned[:n]:
                if fn is not None:
                    fn()
        if commit:
            for st in self._reg_states:
                if st.has_pending:
                    np.copyto(st.fx, st.pend_fx)
                    np.copyto(st.fl, st.pend_fl)
                    st.has_pending = False
            self.samples += 1
        acc = self.acc
        if not np.isfinite(acc).all():
            raise CompileFallback(
                "non-finite value reached a signal in at least one lane "
                "(the interpreted engine applies its guard policy there)")
        acc.fill(0.0)

    # -- freeze helpers ---------------------------------------------------

    def _state_for(self, ins):
        st = self.states.get(ins.name)
        if st is None:
            raise CompileFallback(
                "signal %r was created during run(); lanes built without it"
                % ins.name)
        if st.is_reg != ins.is_register:
            raise CompileFallback(
                "signal %r traced with inconsistent register-ness"
                % ins.name)
        return st

    def _freeze_read(self, i, ins):
        st = self._state_for(ins)
        slot = self.slots[i]
        self._is_vec[i] = True
        slot.lo = st.read_lo        # live alias, as in the interpreted engine
        slot.hi = st.read_hi
        slot.ver = st.read_ver
        if not st.is_reg and st.assigned:
            # Value snapshot at this tape position: the backing signal is
            # reassigned within the sample, so alias identity would leak
            # future values into earlier reads.
            fx_buf = np.empty(self.B)
            fl_buf = np.empty(self.B)
            slot.fx = fx_buf
            slot.fl = fl_buf
            if st.any_dyn:
                def run(slot=slot, st=st, fx_buf=fx_buf, fl_buf=fl_buf,
                        copyto=np.copyto):
                    copyto(fx_buf, st.fx)
                    copyto(fl_buf, st.fl)
                    slot.ver = st.read_ver
            else:
                def run(st=st, fx_buf=fx_buf, fl_buf=fl_buf,
                        copyto=np.copyto):
                    copyto(fx_buf, st.fx)
                    copyto(fl_buf, st.fl)
            return run
        slot.fx = st.fx             # registers / never-reassigned signals:
        slot.fl = st.fl             # commit copies in place, alias is stable
        if st.any_dyn:
            def run(slot=slot, st=st):
                slot.ver = st.read_ver
            return run
        return None

    def _freeze_op(self, i, ins):
        op = ins.op
        in_slots = tuple(self.slots[j] for j in ins.args)
        vec = any(self._is_vec[j] for j in ins.args)
        self._is_vec[i] = vec
        slot = self.slots[i]
        if op in ("add", "sub", "mul", "div", "neg", "abs", "min", "max",
                  "gt", "ge", "lt", "le", "select") \
                or op.startswith(("shl", "shr", "cast")):
            if op == "select" and len(in_slots) != 2 + 1:
                raise CompileFallback(
                    "select with an untraced boolean condition")
            if vec:
                return self._vector_op(op, slot, in_slots)
            return self._scalar_op(op, slot, in_slots)
        raise CompileFallback("unsupported traced operation %r" % op)

    # .. vector ops .......................................................

    def _iv_gate(self, slot, iv_slots, compute):
        """Wrap ``compute`` in a version-dirty check over ``iv_slots``."""
        cached = [None] * len(iv_slots)
        next_ver = self._next_ver

        def run_ival():
            dirty = False
            for k, s in enumerate(iv_slots):
                if s.ver != cached[k]:
                    dirty = True
                    break
            if dirty:
                for k, s in enumerate(iv_slots):
                    cached[k] = s.ver
                lo, hi = compute()
                slot.lo = lo
                slot.hi = hi
                slot.ver = next_ver()
        return run_ival

    def _vector_op(self, op, slot, in_slots):
        B = self.B
        mb = self.mb
        fxo = np.empty(B)

        if op in ("gt", "ge", "lt", "le"):
            sa, sb = in_slots
            cmp = {"gt": np.greater, "ge": np.greater_equal,
                   "lt": np.less, "le": np.less_equal}[op]
            slot.fx = fxo
            slot.fl = fxo           # _compare: fl == fx by construction
            slot.lo = 0.0           # shared _BOOL_IVAL, never dirty
            slot.hi = 1.0
            slot.ver = 0

            def run(sa=sa, sb=sb, cmp=cmp, fxo=fxo, mb=mb, mul=np.multiply):
                cmp(sa.fx, sb.fx, out=mb)
                mul(mb, 1.0, out=fxo)
            return run

        if op.startswith("cast"):
            dt = DType.from_cast_label(op)
            if dt is None:
                raise CompileFallback("unparseable cast label %r" % op)
            if dt.n > 53:
                raise CompileFallback(
                    "cast to %s: n=%d > 53 codes are not exact in float64"
                    % (dt.spec(), dt.n))
            (sa,) = in_slots
            group = QuantGroup(dt)
            slot.fx = fxo
            codes, mb2 = self.codes, self.mb2
            if dt.msbspec == "saturate":
                clo, chi = dt.min_value, dt.max_value
                ival = self._iv_gate(
                    slot, in_slots,
                    lambda sa=sa: iv_vclip((sa.lo, sa.hi), clo, chi))
            else:
                ival = None         # wrap / error: range passes through

            def run(slot=slot, sa=sa, group=group, fxo=fxo, codes=codes,
                    mb=mb, mb2=mb2, ival=ival, isfinite=np.isfinite):
                v = sa.fx
                if not isfinite(v).all():
                    raise CompileFallback(
                        "non-finite value cast in some lane (the "
                        "interpreted kernel raises NonFiniteError)")
                group.apply(v, fxo, codes, mb, mb2)
                slot.fl = sa.fl
                if ival is not None:
                    ival()
                else:
                    slot.lo = sa.lo
                    slot.hi = sa.hi
                    slot.ver = sa.ver
            return run

        if op == "select":
            sc, st_, sf = in_slots
            flo = np.empty(B)
            slot.fx = fxo
            slot.fl = flo
            ival = self._iv_gate(
                slot, (st_, sf),
                lambda a=st_, b=sf: iv_vunion((a.lo, a.hi), (b.lo, b.hi)))

            def run(sc=sc, st_=st_, sf=sf, fxo=fxo, flo=flo, mb=mb,
                    ival=ival, copyto=np.copyto, ne=np.not_equal,
                    ndarray=np.ndarray):
                cfx = sc.fx
                if isinstance(cfx, ndarray):
                    ne(cfx, 0.0, out=mb)
                    copyto(fxo, sf.fx)
                    copyto(fxo, st_.fx, where=mb)
                    copyto(flo, sf.fl)
                    copyto(flo, st_.fl, where=mb)
                else:
                    picked = st_ if cfx != 0.0 else sf
                    copyto(fxo, picked.fx)
                    copyto(flo, picked.fl)
                ival()
            return run

        flo = np.empty(B)
        slot.fx = fxo
        slot.fl = flo

        if op in ("add", "sub", "mul"):
            sa, sb = in_slots
            ufn = {"add": np.add, "sub": np.subtract,
                   "mul": np.multiply}[op]
            ival = self._iv_gate(
                slot, in_slots,
                lambda sa=sa, sb=sb, fn=IV_FNS[op]:
                    fn((sa.lo, sa.hi), (sb.lo, sb.hi)))

            def run(sa=sa, sb=sb, ufn=ufn, fxo=fxo, flo=flo, ival=ival):
                ufn(sa.fx, sb.fx, out=fxo)
                ufn(sa.fl, sb.fl, out=flo)
                ival()
            return run

        if op == "div":
            sa, sb = in_slots
            ival = self._iv_gate(
                slot, in_slots,
                lambda sa=sa, sb=sb:
                    IV_FNS["div"]((sa.lo, sa.hi), (sb.lo, sb.hi)))

            def run(sa=sa, sb=sb, fxo=fxo, flo=flo, mb=mb, ival=ival,
                    div=np.divide, eq=np.equal, ndarray=np.ndarray):
                for den in (sb.fx, sb.fl):
                    if isinstance(den, ndarray):
                        eq(den, 0.0, out=mb)
                        if mb.any():
                            raise CompileFallback(
                                "division by zero in some lane (the "
                                "interpreted engine raises "
                                "ZeroDivisionError)")
                    elif den == 0.0:
                        raise CompileFallback(
                            "division by zero (the interpreted engine "
                            "raises ZeroDivisionError)")
                div(sa.fx, sb.fx, out=fxo)
                div(sa.fl, sb.fl, out=flo)
                ival()
            return run

        if op in ("min", "max"):
            sa, sb = in_slots
            cmp = np.less if op == "min" else np.greater
            ival = self._iv_gate(
                slot, in_slots,
                lambda sa=sa, sb=sb, fn=IV_FNS[op]:
                    fn((sa.lo, sa.hi), (sb.lo, sb.hi)))

            # python min/max keep the *first* argument on ties; the
            # strict compare picks b only when it is strictly smaller
            # (greater), which preserves even -0.0/+0.0 identity.
            def run(sa=sa, sb=sb, cmp=cmp, fxo=fxo, flo=flo, mb=mb,
                    ival=ival, copyto=np.copyto):
                cmp(sb.fx, sa.fx, out=mb)
                copyto(fxo, sa.fx)
                copyto(fxo, sb.fx, where=mb)
                cmp(sb.fl, sa.fl, out=mb)
                copyto(flo, sa.fl)
                copyto(flo, sb.fl, where=mb)
                ival()
            return run

        if op in ("neg", "abs"):
            (sa,) = in_slots
            ufn = np.negative if op == "neg" else np.abs
            ival = self._iv_gate(
                slot, in_slots,
                lambda sa=sa, fn=IV_FNS[op]: fn((sa.lo, sa.hi)))

            def run(sa=sa, ufn=ufn, fxo=fxo, flo=flo, ival=ival):
                ufn(sa.fx, out=fxo)
                ufn(sa.fl, out=flo)
                ival()
            return run

        # shl<k> / shr<k>: value track multiplies by 2.0**±k exactly as
        # the scalar _unop does; interval scales by the same factor.
        k = int(op[3:])
        factor = 2.0 ** k if op.startswith("shl") else 2.0 ** -k
        (sa,) = in_slots
        ival = self._iv_gate(
            slot, in_slots,
            lambda sa=sa, f=factor: iv_vscale((sa.lo, sa.hi), f))

        def run(sa=sa, f=factor, fxo=fxo, flo=flo, ival=ival,
                mul=np.multiply):
            mul(sa.fx, f, out=fxo)
            mul(sa.fl, f, out=flo)
            ival()
        return run

    # .. all-scalar ops ...................................................

    def _scalar_op(self, op, slot, in_slots):
        """Constant-only expression: plain Python floats + real Intervals.

        Rare (an op node needs an Expr operand, and reads are vector),
        but e.g. ``cast(0.5, dtype)`` or ``gt(1.0, 2.0)`` land here.
        Using the interpreter's own Interval methods makes the range
        math trivially exact.
        """
        if op in ("gt", "ge", "lt", "le"):
            sa, sb = in_slots
            fn = {"gt": lambda a, b: a > b, "ge": lambda a, b: a >= b,
                  "lt": lambda a, b: a < b, "le": lambda a, b: a <= b}[op]
            slot.lo, slot.hi, slot.ver = 0.0, 1.0, 0

            def run(slot=slot, sa=sa, sb=sb, fn=fn):
                v = 1.0 if fn(sa.fx, sb.fx) else 0.0
                slot.fx = v
                slot.fl = v
            return run

        if op.startswith("cast"):
            dt = DType.from_cast_label(op)
            if dt is None:
                raise CompileFallback("unparseable cast label %r" % op)
            (sa,) = in_slots
            wrap = dt.msbspec == "wrap"
            kern = None if wrap else dt.saturating.kernel
            clip = dt.range_interval() if dt.msbspec == "saturate" else None
            gate = self._iv_gate(
                slot, in_slots,
                lambda sa=sa, clip=clip:
                    self._scalar_iv_pair(
                        _scalar_interval(sa.lo, sa.hi).clip(clip)))

            def run(slot=slot, sa=sa, dt=dt, wrap=wrap, kern=kern,
                    clip=clip, gate=gate):
                try:
                    slot.fx = dt.quantize(sa.fx) if wrap else kern(sa.fx)[0]
                except Exception as exc:
                    raise CompileFallback(
                        "scalar cast failed: %s (the interpreted engine "
                        "raises the same)" % exc)
                slot.fl = sa.fl
                if clip is not None:
                    gate()
                else:
                    slot.lo = sa.lo
                    slot.hi = sa.hi
                    slot.ver = sa.ver
            return run

        if op == "select":
            sc, st_, sf = in_slots
            gate = self._iv_gate(
                slot, (st_, sf),
                lambda a=st_, b=sf: self._scalar_iv_pair(
                    _scalar_interval(a.lo, a.hi).union(
                        _scalar_interval(b.lo, b.hi))))

            def run(slot=slot, sc=sc, st_=st_, sf=sf, gate=gate):
                picked = st_ if sc.fx != 0.0 else sf
                slot.fx = picked.fx
                slot.fl = picked.fl
                gate()
            return run

        if op in ("add", "sub", "mul", "div", "min", "max"):
            sa, sb = in_slots
            vfn = {"add": lambda a, b: a + b, "sub": lambda a, b: a - b,
                   "mul": lambda a, b: a * b, "div": lambda a, b: a / b,
                   "min": min, "max": max}[op]
            ifn = {"add": iv_add, "sub": iv_sub, "mul": iv_mul,
                   "div": lambda a, b: a / b,
                   "min": lambda a, b: a.minimum(b),
                   "max": lambda a, b: a.maximum(b)}[op]
            gate = self._iv_gate(
                slot, in_slots,
                lambda sa=sa, sb=sb, ifn=ifn: self._scalar_iv_pair(
                    ifn(_scalar_interval(sa.lo, sa.hi),
                        _scalar_interval(sb.lo, sb.hi))))

            def run(slot=slot, sa=sa, sb=sb, vfn=vfn, gate=gate):
                try:
                    slot.fx = vfn(sa.fx, sb.fx)
                    slot.fl = vfn(sa.fl, sb.fl)
                except ZeroDivisionError:
                    raise CompileFallback(
                        "scalar division by zero (the interpreted engine "
                        "raises ZeroDivisionError)")
                gate()
            return run

        if op in ("neg", "abs"):
            (sa,) = in_slots
            vfn = (lambda a: -a) if op == "neg" else abs
            ifn = iv_neg if op == "neg" else (lambda a: abs(a))
            gate = self._iv_gate(
                slot, in_slots,
                lambda sa=sa, ifn=ifn: self._scalar_iv_pair(
                    ifn(_scalar_interval(sa.lo, sa.hi))))

            def run(slot=slot, sa=sa, vfn=vfn, gate=gate):
                slot.fx = vfn(sa.fx)
                slot.fl = vfn(sa.fl)
                gate()
            return run

        k = int(op[3:])
        factor = 2.0 ** k if op.startswith("shl") else 2.0 ** -k
        kk = k if op.startswith("shl") else -k
        (sa,) = in_slots
        gate = self._iv_gate(
            slot, in_slots,
            lambda sa=sa, kk=kk: self._scalar_iv_pair(
                _scalar_interval(sa.lo, sa.hi).scale_pow2(kk)))

        def run(slot=slot, sa=sa, f=factor, gate=gate):
            slot.fx = sa.fx * f
            slot.fl = sa.fl * f
            gate()
        return run

    @staticmethod
    def _scalar_iv_pair(interval):
        try:
            return interval.lo, interval.hi
        except ValueError:      # pragma: no cover - Interval ctor guard
            raise CompileFallback("scalar interval arithmetic failed")

    # .. assigns ..........................................................

    def _freeze_assign(self, ins):
        st = self._state_for(ins)
        src = self.slots[ins.args]
        plan = st.plan
        check_err = self.overflow_raise and plan.any_err
        acc, s1, s2, d1 = self.acc, self.s1, self.s2, self.d1
        codes, qbuf, mb, mb2 = self.codes, self.qbuf, self.mb, self.mb2
        ilo, ihi = self.ilo, self.ihi
        ndarray = np.ndarray
        copyto = np.copyto

        def run():
            in_fx = src.fx
            in_fl = src.fl
            # Non-finite guard accumulator: checked at the end of the
            # sample; any non-finite anywhere forces the fallback.
            np.add(acc, in_fx, out=acc)
            np.add(acc, in_fl, out=acc)

            vrange_update(st.rs, in_fx, s1, mb)

            if isinstance(in_fl, ndarray) or isinstance(in_fx, ndarray):
                np.subtract(in_fl, in_fx, out=d1)
                d = d1
            else:
                d = in_fl - in_fx
            vstat_update(st.ec, d, s1, s2)

            groups = plan.groups
            if not groups:
                qfx = in_fx
            elif groups[0].idx is None:
                g = groups[0]
                g.apply(in_fx, qbuf, codes, mb, mb2)
                if check_err and g.err_idx is not None \
                        and mb[g.err_idx].any():
                    raise CompileFallback(
                        "error-mode overflow on %r under "
                        "overflow_action='raise'" % st.name)
                np.add(st.ovf, mb, out=st.ovf)
                qfx = qbuf
            else:
                vec_in = isinstance(in_fx, ndarray)
                for g, bufs in zip(groups, st.gbufs):
                    gv, gout, gcodes, gbad, gb2 = bufs
                    if vec_in:
                        np.take(in_fx, g.idx, out=gv)
                    else:
                        gv.fill(in_fx)
                    g.apply(gv, gout, gcodes, gbad, gb2)
                    if check_err and g.err_idx is not None \
                            and gbad[g.err_idx].any():
                        raise CompileFallback(
                            "error-mode overflow on %r under "
                            "overflow_action='raise'" % st.name)
                    qbuf[g.idx] = gout
                    st.ovf[g.idx] += gbad
                pt = plan.passthrough_idx
                if pt is not None:
                    if vec_in:
                        qbuf[pt] = in_fx[pt]
                    else:
                        qbuf[pt] = in_fx
                qfx = qbuf

            # No error() annotations in compiled lanes: fl = in_fl.
            if isinstance(in_fl, ndarray) or isinstance(qfx, ndarray):
                np.subtract(in_fl, qfx, out=d1)
                d = d1
            else:
                d = in_fl - qfx
            vstat_update(st.ep, d, s1, s2)
            vstat_update(st.vs, in_fl, s1, s2)

            lo = src.lo
            hi = src.hi
            if isinstance(lo, ndarray) or lo <= hi:
                if st.has_sat:
                    # Sig._record's exclusive clip branches, as
                    # sequential masked clamps (equivalent because
                    # sat_lo <= sat_hi; ±inf bounds are identities for
                    # non-saturating lanes).
                    if isinstance(lo, ndarray):
                        copyto(ilo, lo)
                    else:
                        ilo.fill(lo)
                    np.greater(ilo, st.sat_hi, out=mb)
                    copyto(ilo, st.sat_hi, where=mb)
                    np.less(ilo, st.sat_lo, out=mb)
                    copyto(ilo, st.sat_lo, where=mb)
                    if isinstance(hi, ndarray):
                        copyto(ihi, hi)
                    else:
                        ihi.fill(hi)
                    np.less(ihi, st.sat_lo, out=mb)
                    copyto(ihi, st.sat_lo, where=mb)
                    np.greater(ihi, st.sat_hi, out=mb)
                    copyto(ihi, st.sat_hi, where=mb)
                    ulo, uhi = ilo, ihi
                else:
                    ulo, uhi = lo, hi
                np.less(ulo, st.prop_lo, out=mb)
                if not st.all_unforced:
                    np.logical_and(mb, st.not_forced, out=mb)
                copyto(st.prop_lo, ulo, where=mb)
                np.greater(uhi, st.prop_hi, out=mb)
                if not st.all_unforced:
                    np.logical_and(mb, st.not_forced, out=mb)
                copyto(st.prop_hi, uhi, where=mb)
                if st.any_dyn:
                    changed = False
                    np.less(ulo, st.read_lo, out=mb)
                    np.logical_and(mb, st.dyn_mask, out=mb)
                    if mb.any():
                        copyto(st.read_lo, ulo, where=mb)
                        changed = True
                    np.greater(uhi, st.read_hi, out=mb)
                    np.logical_and(mb, st.dyn_mask, out=mb)
                    if mb.any():
                        copyto(st.read_hi, uhi, where=mb)
                        changed = True
                    if changed:
                        st.read_ver += 1

            if st.is_reg:
                copyto(st.pend_fx, qfx)
                copyto(st.pend_fl, in_fl)
                st.has_pending = True
            else:
                copyto(st.fx, qfx)
                copyto(st.fl, in_fl)
        return run

    # -- write-back -------------------------------------------------------

    def write_back(self):
        """Scatter the vector state back into the lane signal objects."""
        for name in self.names:
            st = self.states[name]
            for b, sig in enumerate(st.sigs):
                sig._fx = float(st.fx[b])
                sig._fl = float(st.fl[b])
                if st.is_reg:
                    sig._pend_fx = float(st.pend_fx[b])
                    sig._pend_fl = float(st.pend_fl[b])
                    sig._has_pending = st.has_pending
                rs = sig.range_stat
                rs.count = st.rs.count
                rs.min = float(st.rs.min[b])
                rs.max = float(st.rs.max[b])
                rs.frac_bits = int(st.rs.fb[b])
                for stat, vst in ((sig.err_consumed, st.ec),
                                  (sig.err_produced, st.ep),
                                  (sig.val_stat, st.vs)):
                    stat.count = vst.count
                    stat.mean = float(vst.mean[b])
                    stat._m2 = float(vst.m2[b])
                    stat.max_abs = float(vst.max_abs[b])
                sig.overflow_count = int(st.ovf[b])
                p = sig._prop_ival
                p.lo = float(st.prop_lo[b])
                p.hi = float(st.prop_hi[b])
                if st.dyn_mask[b]:
                    r = sig._read_ival
                    r.lo = float(st.read_lo[b])
                    r.hi = float(st.read_hi[b])
