"""Streaming instruction tape for the compiled simulation engine.

The compiled engine does not schedule the traced SFG statically — a
design's ``run`` method is ordinary Python, and its per-sample stream
of traced operations *is* the schedule.  A stub copy of the design runs
once with the tracer hooks that normally build :class:`repro.sfg.SFG`
pointed at a :class:`TapeStreamer` instead: every signal read, literal,
operation and monitored assignment becomes one instruction.

The first clock tick freezes the recorded sample into vector closures
(:mod:`repro.compile.executor`); every later tick verifies that the new
sample streamed the *exact same structure* — constants may change
value, control flow may not — and then executes the frozen closures
once across all batch lanes.  Any divergence raises
:class:`CompileFallback`, which the driver answers by re-running the
whole group on the interpreted engine.
"""

from __future__ import annotations

import math
from contextlib import contextmanager

from repro.signal.context import DesignContext
from repro.signal.expr import Operand

__all__ = ["CompileFallback", "Instr", "TapeStreamer", "StubContext",
           "value_branch_guard"]

#: Record-mode safety valve: a design that streams this many
#: instructions without ever ticking is not a per-sample loop.
MAX_TAPE_INSTRUCTIONS = 200_000


class CompileFallback(Exception):
    """The design cannot be (or stopped being) lowerable.

    Deliberately *not* a :class:`~repro.core.errors.ReproError`: the
    parallel runner treats ``ReproError`` as a simulation failure, while
    this exception only means "run this batch interpreted instead".
    """


class Instr:
    """One tape instruction.

    ``kind`` is ``"const"`` / ``"read"`` / ``"op"`` / ``"assign"``;
    ``name`` names the signal for reads and assigns, ``op`` the
    operation for ops, ``args`` the operand slot indices (a tuple for
    ops, a single index for assigns) and ``value`` the initially
    recorded literal for consts.
    """

    __slots__ = ("kind", "name", "op", "args", "value", "is_register")

    def __init__(self, kind, name=None, op=None, args=None, value=None,
                 is_register=False):
        self.kind = kind
        self.name = name
        self.op = op
        self.args = args
        self.value = value
        self.is_register = is_register

    def __repr__(self):
        body = {"const": lambda: repr(self.value),
                "read": lambda: self.name,
                "op": lambda: "%s%r" % (self.op, self.args),
                "assign": lambda: "%s <- %d" % (self.name, self.args)}
        return "Instr(%s %s)" % (self.kind, body[self.kind]())


class TapeStreamer:
    """Duck-typed tracer that records/verifies the instruction stream.

    Implements the tracer interface consumed by ``repro.signal``
    (``sig_node`` / ``const_node`` / ``op_node`` / ``assign_edge``) so
    the stub run needs no changes to the signal layer.  Tokens handed
    back to the expression machinery are ``(sample_serial, slot_index)``
    pairs; an operand token minted in an earlier sample means the design
    cached an expression across ticks, which the value closures cannot
    reproduce — fallback.
    """

    def __init__(self, executor, max_instructions=MAX_TAPE_INSTRUCTIONS):
        self.executor = executor
        self.max_instructions = max_instructions
        self.serial = 0          # sample currently being streamed
        self.cursor = 0          # next instruction index within it
        self.frozen = False
        self.tape = []

    # -- tracer interface -------------------------------------------------

    def sig_node(self, sig):
        return self._emit("read", name=sig.name,
                          is_register=sig.is_register)

    def const_node(self, value):
        v = float(value)
        if not math.isfinite(v):
            raise CompileFallback(
                "non-finite constant %r streamed into the tape" % v)
        return self._emit("const", value=v)

    def op_node(self, opname, operand_nodes):
        args = tuple(self._operand(tok) for tok in operand_nodes)
        return self._emit("op", op=opname, args=args)

    def assign_edge(self, src, sig):
        self._emit("assign", name=sig.name, args=self._operand(src),
                   is_register=sig.is_register)

    # -- internals --------------------------------------------------------

    def _operand(self, token):
        serial, idx = token
        if serial != self.serial:
            raise CompileFallback(
                "expression built in sample %d was reused in sample %d; "
                "cross-sample expression caching is not lowerable"
                % (serial, self.serial))
        return idx

    def _emit(self, kind, name=None, op=None, args=None, value=None,
              is_register=False):
        i = self.cursor
        if not self.frozen:
            if i >= self.max_instructions:
                raise CompileFallback(
                    "more than %d instructions streamed without a tick; "
                    "not a per-sample simulation loop"
                    % self.max_instructions)
            self.tape.append(Instr(kind, name, op, args, value,
                                   is_register))
        else:
            if i >= len(self.tape):
                raise CompileFallback(
                    "sample %d streamed more instructions than the "
                    "frozen %d-instruction tape"
                    % (self.serial, len(self.tape)))
            ins = self.tape[i]
            if (ins.kind != kind or ins.name != name or ins.op != op
                    or ins.is_register != is_register
                    or (kind != "const" and ins.args != args)):
                raise CompileFallback(
                    "sample %d diverged from the frozen tape at "
                    "instruction %d: expected %r, streamed %s %r"
                    % (self.serial, i, ins, kind,
                       name if name is not None else (op or value)))
            if kind == "const":
                self.executor.set_const(i, value)
        self.cursor = i + 1
        return (self.serial, i)

    # -- sample boundaries ------------------------------------------------

    def flush(self):
        """Clock tick: freeze on first use, verify + execute afterwards."""
        if not self.frozen:
            self.executor.freeze(self.tape)
            self.frozen = True
        if self.cursor != len(self.tape):
            raise CompileFallback(
                "tick after %d of %d tape instructions in sample %d"
                % (self.cursor, len(self.tape), self.serial))
        self.executor.run_sample(commit=True)
        self.serial += 1
        self.cursor = 0

    def finalize(self):
        """End of the run: execute any trailing partial sample (no tick).

        Assignments after the final tick are visible in the interpreted
        engine without a register commit; the verified prefix replays
        them the same way.
        """
        if not self.frozen:
            # The design never ticked: the whole run is one
            # uncommitted sample.
            self.executor.freeze(self.tape)
            self.frozen = True
        if self.cursor:
            self.executor.run_sample(n=self.cursor, commit=False)
            self.cursor = 0


class StubContext(DesignContext):
    """Context for the tape-recording stub run.

    A plain :class:`~repro.signal.context.DesignContext` whose ``tick``
    additionally flushes the streamer, so the vector lanes advance in
    lock-step with the stub's own scalar simulation.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.streamer = None

    def tick(self):
        if self.streamer is not None:
            self.streamer.flush()
        super().tick()


#: Operand entry points whose results feed Python control flow (or leak
#: plain floats): all return scalars the tape cannot carry, so touching
#: any of them during the stub run forces the interpreted engine.
_VALUE_BRANCH_HOOKS = ("__lt__", "__le__", "__gt__", "__ge__",
                      "__bool__", "__float__", "eq")


@contextmanager
def value_branch_guard():
    """Trap value-dependent control flow during the stub run.

    ``if w > 0:`` (relational dunders return plain bools),
    ``bool(expr)`` and ``float(expr)`` all erase information the vector
    executor would need per-lane; while the guard is active any such
    call raises :class:`CompileFallback` immediately.  The traced
    comparison *ops* (:func:`repro.signal.ops.gt` and friends) and
    :func:`repro.signal.ops.select` remain fully lowerable.
    """
    saved = [(name, getattr(Operand, name))
             for name in _VALUE_BRANCH_HOOKS]

    def _hook(name):
        def hooked(self, *args):
            raise CompileFallback(
                "value-dependent control flow: Operand.%s was evaluated "
                "during the stub run" % name)
        return hooked

    for name, _ in saved:
        setattr(Operand, name, _hook(name))
    try:
        yield
    finally:
        for name, fn in saved:
            setattr(Operand, name, fn)
