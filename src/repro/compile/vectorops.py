"""Vectorized replicas of the scalar hot-path numerics.

Every helper here reproduces one piece of the interpreted engine's
per-assignment arithmetic (:meth:`repro.signal.signal.Sig._record`,
:mod:`repro.core.kernels`, :mod:`repro.core.stats`,
:mod:`repro.core.interval`) elementwise over a ``(B,)`` lane axis,
**bit-identically**: IEEE-754 float64 addition, multiplication and
division are deterministic, so applying the same operations in the same
order per lane yields the same doubles the scalar path produces.  Where
the scalar code uses strict comparisons with first-argument tie
preference (``min``/``max``, running min/max updates), the vector code
uses explicit strict-compare ``np.where``/``np.copyto`` masks rather
than ``np.minimum``, preserving even the sign-of-zero of the result.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import word
from repro.compile.tape import CompileFallback

__all__ = ["VStat", "VRange", "QuantGroup", "QuantPlan", "build_quant_plan",
           "vstat_update", "vrange_update", "IV_FNS", "iv_nan_check"]

_FRAC_CAP = 48  # RangeStat.FRAC_CAP


# -- Welford error statistics (ErrorStat) -------------------------------------


class VStat:
    """Vectorized :class:`repro.core.stats.ErrorStat` state."""

    __slots__ = ("count", "mean", "m2", "max_abs")

    def __init__(self, count, mean, m2, max_abs):
        self.count = count          # scalar int (structure-uniform)
        self.mean = mean            # (B,) float64
        self.m2 = m2
        self.max_abs = max_abs


def vstat_update(st, v, s1, s2):
    """One ``ErrorStat.update`` step per lane; ``s1``/``s2`` are scratch.

    ``v`` may be a scalar (constant assignment) or a ``(B,)`` array.
    Replicates: ``delta = v - mean; mean += delta / count;
    m2 += delta * (v - mean); max_abs = max(max_abs, abs(v))``.
    """
    st.count += 1
    np.subtract(v, st.mean, out=s1)             # delta
    np.divide(s1, float(st.count), out=s2)
    np.add(st.mean, s2, out=st.mean)
    np.subtract(v, st.mean, out=s2)             # v - updated mean
    np.multiply(s1, s2, out=s2)
    np.add(st.m2, s2, out=st.m2)
    if isinstance(v, np.ndarray):
        np.abs(v, out=s1)
    else:
        s1.fill(abs(v))
    # strict ``a > max_abs`` keeps the old value on ties, same as the
    # scalar code; both sides are >= +0.0 so np.maximum is identical.
    np.maximum(s1, st.max_abs, out=st.max_abs)


# -- Range statistics (RangeStat) ---------------------------------------------


class VRange:
    """Vectorized :class:`repro.core.stats.RangeStat` state."""

    __slots__ = ("count", "min", "max", "fb", "fb_open")

    def __init__(self, count, vmin, vmax, fb):
        self.count = count          # scalar int
        self.min = vmin             # (B,)
        self.max = vmax
        self.fb = fb                # (B,) int32 frac_bits
        self.fb_open = fb < _FRAC_CAP   # lanes still below the cap


def vrange_update(rs, v, s1, mb):
    """One ``RangeStat.update`` per lane (``s1`` float, ``mb`` bool scratch)."""
    rs.count += 1
    np.less(v, rs.min, out=mb)
    np.copyto(rs.min, v, where=mb)
    np.greater(v, rs.max, out=mb)
    np.copyto(rs.max, v, where=mb)
    if not rs.fb_open.any():
        return
    # Grid pre-check: a value already on the lane's 2^-fb grid cannot
    # raise frac_bits.  np.ldexp silently overflows to inf where
    # math.ldexp raises OverflowError; inf % 1.0 is nan != 0, so such
    # lanes land in the exact scalar replay below, which re-raises.
    np.ldexp(v, rs.fb, out=s1)
    np.mod(s1, 1.0, out=s1)
    np.not_equal(s1, 0.0, out=mb)
    np.logical_and(mb, rs.fb_open, out=mb)
    if mb.any():
        scalar = not isinstance(v, np.ndarray)
        for i in np.nonzero(mb)[0]:
            value = v if scalar else float(v[i])
            fb = int(rs.fb[i])
            try:
                scaled = math.ldexp(value, fb)
            except OverflowError:
                raise CompileFallback(
                    "frac-bits probe overflow (the interpreted engine "
                    "raises here)")
            if scaled % 1.0 != 0.0:
                nfb = word.needed_frac_bits(value, cap=_FRAC_CAP)
                if nfb > fb:
                    rs.fb[i] = nfb
                    rs.fb_open[i] = nfb < _FRAC_CAP


# -- quantization plans -------------------------------------------------------


class QuantGroup:
    """One uniform (n, f, signed, overflow, rounding) lane subset."""

    __slots__ = ("idx", "scale", "inv", "lo", "hi", "span", "offset",
                 "mode", "rounding", "err_idx")

    def __init__(self, dtype, idx=None, err_idx=None):
        n, f, signed = dtype.n, dtype.f, dtype.vtype == "tc"
        self.idx = idx                  # lane indices (None = all lanes)
        self.scale = math.ldexp(1.0, f)
        self.inv = math.ldexp(1.0, -f)
        if signed:
            self.lo = float(-(1 << (n - 1)))
            self.hi = float((1 << (n - 1)) - 1)
            self.offset = float(1 << (n - 1))
        else:
            self.lo = 0.0
            self.hi = float((1 << n) - 1)
            self.offset = 0.0
        self.span = float(1 << n)
        # error-mode signals quantize through the *saturating* kernel
        # (Sig._bind_dtype) and raise separately on overflow.
        self.mode = "wrap" if dtype.msbspec == "wrap" else "saturate"
        if self.mode == "wrap" and n > 52:
            # The float wrap dance adds offset (2**(n-1)) to a code in
            # [0, 2**n); at n=53 that sum exceeds 2**53 and rounds,
            # while the scalar kernel's integer arithmetic is exact.
            raise CompileFallback(
                "wrap-mode dtype %s with n=%d > 52 cannot wrap exactly "
                "in float64" % (dtype.spec(), n))
        self.rounding = dtype.lsbspec
        self.err_idx = err_idx          # lanes that must raise on overflow

    def apply(self, v, out, codes, bad, b2):
        """Quantize ``v`` into ``out``, leaving the overflow mask in ``bad``.

        ``v`` scalar or an array shaped like ``out``; ``codes`` is a
        float64 scratch, ``bad``/``b2`` bool scratches.  Bit-identical
        to the scalar kernels: both compute the identical float64 code,
        and the wrap fmod dance equals the integer mask-and-offset at
        every magnitude (fmod by a power of two is exact).
        """
        if isinstance(v, np.ndarray):
            np.multiply(v, self.scale, out=codes)
        else:
            codes.fill(v)
            codes *= self.scale
        r = self.rounding
        if r == "round":
            np.add(codes, 0.5, out=codes)
            np.floor(codes, out=codes)
        elif r == "floor":
            np.floor(codes, out=codes)
        elif r == "ceil":
            np.ceil(codes, out=codes)
        elif r == "trunc":
            np.trunc(codes, out=codes)
        else:   # pragma: no cover - DType validates lsbspec
            raise CompileFallback("unknown rounding mode %r" % r)
        np.less(codes, self.lo, out=bad)
        np.greater(codes, self.hi, out=b2)
        np.logical_or(bad, b2, out=bad)
        if bad.any():
            if self.mode == "saturate":
                np.clip(codes, self.lo, self.hi, out=codes)
            else:       # wrap
                np.mod(codes, self.span, out=codes)
                np.add(codes, self.offset, out=codes)
                np.mod(codes, self.span, out=codes)
                np.subtract(codes, self.offset, out=codes)
        np.multiply(codes, self.inv, out=out)


class QuantPlan:
    """Per-signal quantization plan over the lane axis.

    ``groups`` is empty for an all-untyped signal (pass-through); one
    entry with ``idx=None`` when every lane shares a format (full-vector
    fast path); otherwise one gather/scatter group per distinct format
    plus an optional pass-through index set for untyped lanes.
    """

    __slots__ = ("groups", "passthrough_idx", "any_err")

    def __init__(self, groups, passthrough_idx, any_err):
        self.groups = groups
        self.passthrough_idx = passthrough_idx
        self.any_err = any_err


def _group_key(dt):
    return (dt.n, dt.f, dt.vtype,
            "wrap" if dt.msbspec == "wrap" else "saturate", dt.lsbspec)


def build_quant_plan(dtypes):
    """Build a :class:`QuantPlan` from one signal's per-lane dtypes.

    ``dtypes``: list of :class:`~repro.core.dtype.DType` or ``None`` per
    lane.  Raises :class:`CompileFallback` for formats the float64 code
    path cannot represent exactly (n > 53).
    """
    if all(dt is None for dt in dtypes):
        return QuantPlan((), None, False)
    by_key = {}
    untyped = []
    err_lanes = {}
    for lane, dt in enumerate(dtypes):
        if dt is None:
            untyped.append(lane)
            continue
        if dt.n > 53:
            raise CompileFallback(
                "dtype %s has n=%d > 53; codes are not exact in float64"
                % (dt.spec(), dt.n))
        key = _group_key(dt)
        by_key.setdefault(key, (dt, []))[1].append(lane)
        if dt.msbspec == "error":
            err_lanes.setdefault(key, []).append(lane)
    groups = []
    if not untyped and len(by_key) == 1:
        (dt, lanes), = by_key.values()
        key = _group_key(dt)
        err = err_lanes.get(key)
        groups.append(QuantGroup(
            dt, idx=None,
            err_idx=np.asarray(err, dtype=np.intp) if err else None))
        return QuantPlan(tuple(groups), None, bool(err))
    any_err = False
    for key in sorted(by_key):
        dt, lanes = by_key[key]
        err = err_lanes.get(key)
        if err:
            any_err = True
            # positions of the error lanes *within* this group's gather
            pos = {lane: p for p, lane in enumerate(lanes)}
            err_idx = np.asarray([pos[l] for l in err], dtype=np.intp)
        else:
            err_idx = None
        groups.append(QuantGroup(dt, idx=np.asarray(lanes, dtype=np.intp),
                                 err_idx=err_idx))
    pt = np.asarray(untyped, dtype=np.intp) if untyped else None
    return QuantPlan(tuple(groups), pt, any_err)


# -- interval arithmetic ------------------------------------------------------
#
# Bounds are (lo, hi) pairs, each a float or a (B,) array.  These run
# only when an operand's interval actually changed (version-gated in the
# executor), so clarity wins over out= buffers here.  Each formula is a
# transcription of the corresponding repro.core.interval code, with
# python min/max replaced by strict-compare np.where (first-argument tie
# preference preserved).


def iv_nan_check(lo, hi):
    """The scalar engine raises ValueError on NaN interval bounds."""
    bad = np.any(np.isnan(lo)) or np.any(np.isnan(hi))
    if bad:
        raise CompileFallback(
            "NaN interval bound (the interpreted engine raises here)")


def _vmin(a, b):
    return np.where(np.less(b, a), b, a)


def _vmax(a, b):
    return np.where(np.greater(b, a), b, a)


def iv_vadd(a, b):
    lo, hi = a[0] + b[0], a[1] + b[1]
    iv_nan_check(lo, hi)
    return lo, hi


def iv_vsub(a, b):
    lo, hi = a[0] - b[1], a[1] - b[0]
    iv_nan_check(lo, hi)
    return lo, hi


def _mul_end(x, y):
    # 0 * inf = 0, as interval endpoint products require (_mul_end).
    return np.where(np.logical_or(np.equal(x, 0.0), np.equal(y, 0.0)),
                    0.0, np.multiply(x, y))


def iv_vmul(a, b):
    p1 = _mul_end(a[0], b[0])
    p2 = _mul_end(a[0], b[1])
    p3 = _mul_end(a[1], b[0])
    p4 = _mul_end(a[1], b[1])
    # iv_mul's elif chain is equivalent to independent strict updates
    # because lo <= hi holds throughout.
    lo = hi = p1
    for p in (p2, p3, p4):
        lo = np.where(np.less(p, lo), p, lo)
        hi = np.where(np.greater(p, hi), p, hi)
    iv_nan_check(lo, hi)
    return lo, hi


def iv_vneg(a):
    return -a[1], -a[0]


def iv_vabs(a):
    lo, hi = a[0], a[1]
    nonneg = np.greater_equal(lo, 0.0)
    nonpos = np.less_equal(hi, 0.0)
    out_lo = np.where(nonneg, lo, np.where(nonpos, -hi, 0.0))
    # max(-lo, hi) with first-argument tie preference (-lo).
    mixed_hi = np.where(np.greater(hi, -lo), hi, -lo)
    out_hi = np.where(nonneg, hi, np.where(nonpos, -lo, mixed_hi))
    return out_lo, out_hi


def iv_vdiv(a, b):
    crossing = np.logical_and(np.less_equal(b[0], 0.0),
                              np.less_equal(0.0, b[1]))
    with np.errstate(divide="ignore", invalid="ignore"):
        qs = (a[0] / b[0], a[0] / b[1], a[1] / b[0], a[1] / b[1])
        lo = hi = qs[0]
        for q in qs[1:]:
            lo = np.where(np.less(q, lo), q, lo)
            hi = np.where(np.greater(q, hi), q, hi)
    lo = np.where(crossing, -math.inf, lo)
    hi = np.where(crossing, math.inf, hi)
    iv_nan_check(lo, hi)
    return lo, hi


def iv_vunion(a, b):
    return _vmin(a[0], b[0]), _vmax(a[1], b[1])


def iv_vminimum(a, b):
    return _vmin(a[0], b[0]), _vmin(a[1], b[1])


def iv_vmaximum(a, b):
    return _vmax(a[0], b[0]), _vmax(a[1], b[1])


def iv_vscale(a, factor):
    return a[0] * factor, a[1] * factor


def iv_vclip(a, clo, chi):
    # Interval.clip: lo = min(max(lo, clo), chi); hi = max(min(hi, chi), clo)
    lo = _vmin(_vmax(a[0], clo), chi)
    hi = _vmax(_vmin(a[1], chi), clo)
    return lo, hi


IV_FNS = {
    "add": iv_vadd, "sub": iv_vsub, "mul": iv_vmul, "div": iv_vdiv,
    "neg": iv_vneg, "abs": iv_vabs,
    "min": iv_vminimum, "max": iv_vmaximum,
}
