"""Parallel re-simulation runner (see :mod:`repro.parallel.runner`)."""

from repro.parallel.runner import (SimCache, SimConfig, SimOutcome,
                                   default_workers, fingerprint,
                                   run_simulations)

__all__ = ["SimConfig", "SimOutcome", "SimCache", "run_simulations",
           "default_workers", "fingerprint"]
