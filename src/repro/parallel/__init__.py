"""Parallel re-simulation runner (see :mod:`repro.parallel.runner`)."""

from repro.parallel.runner import (PoolPolicy, SimCache, SimConfig,
                                   SimOutcome, default_workers, fingerprint,
                                   in_worker, run_simulations)

__all__ = ["SimConfig", "SimOutcome", "SimCache", "PoolPolicy",
           "run_simulations", "default_workers", "fingerprint",
           "in_worker"]
