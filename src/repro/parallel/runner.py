"""Deterministic, crash-tolerant parallel re-simulation fan-out.

The refinement loop is simulation-hungry: a sensitivity sweep costs
``2N + 1`` runs, the greedy wordlength optimizer probes every candidate
signal per move, and a fault campaign re-simulates once per fault.  All
of those runs are *independent* — same design factory, different
annotations / seeds / faults — which makes them embarrassingly
parallel.

:func:`run_simulations` executes a batch of :class:`SimConfig` jobs and
returns one :class:`SimOutcome` per job, in order.  Execution
strategies, picked automatically:

* **fork pool** — a ``ProcessPoolExecutor`` on the ``fork`` start
  method.  The design factory is stashed in module state *before* the
  workers fork, so arbitrary (even unpicklable) factories are inherited
  by the children for free; only the configs and outcomes cross the
  pipe.  Results are deterministic because every job carries its own
  stimulus seed — scheduling order cannot change the numbers.
* **serial fallback** — when ``fork`` is unavailable (Windows/macOS
  spawn), only one CPU is visible, or ``workers <= 1``, the same jobs
  run in-process.  Bit-identical results either way.
* **result cache** — an optional :class:`SimCache` keyed by a
  fingerprint of (design factory, annotations, samples, seed, faults).
  The optimizer re-probes many type maps it has already measured; the
  cache turns those into dictionary hits.

Fault tolerance (see :mod:`repro.robust.recovery` and
``docs/robustness.md``):

* **per-job deadlines** — ``SimConfig.deadline_seconds`` arms a
  signal-based wall-clock alarm inside the executing process; a job
  that overruns aborts with :class:`~repro.core.errors.DeadlineExceeded`
  instead of hanging the batch.  In the quarantine phase the parent
  additionally hard-kills a worker that ignores its alarm.
* **poison-job quarantine** — outcomes are harvested incrementally, so
  a worker crash (``BrokenProcessPool``) never discards jobs that
  already finished.  The uncompleted jobs move to single-worker
  isolation pools where a crash is attributable to exactly one job;
  that job is retried with exponential backoff
  (:class:`repro.robust.retry.BackoffPolicy`) and finally quarantined,
  while every healthy job still runs in parallel — the old wholesale
  serial re-run is gone.
* **pipe-failure fallback** — a job whose config or outcome cannot be
  pickled re-runs in-process, alone; the rest of the batch stays in the
  pool.
* **write-ahead journal** — with ``journal=``, every completed outcome
  is appended to a :class:`repro.robust.recovery.Journal` the moment it
  arrives; re-running the same batch after a ``kill -9`` replays the
  journaled outcomes bit-exactly and executes only the missing jobs.

Recovery events are tallied in :mod:`repro.obs.counters`
(``parallel.retries``, ``parallel.quarantined``,
``parallel.deadline_hits``, ``journal.replays``, ...), emitted as trace
events under the ``parallel.batch`` span, and — when a ``diagnostics``
container is passed — recorded as stable-coded events (``DG201``
deadline, ``DG202`` quarantine, ``DG203`` journal replay, ``DG204``
retry).

Environment knobs: ``REPRO_WORKERS`` overrides the auto worker count,
``REPRO_PARALLEL=0`` forces the serial path.

The per-job boundaries (job dispatch, pool harvest, cache store/lookup)
consult :data:`repro.chaoshooks.ACTIVE` — a single attribute load plus
``is None`` check when disarmed — so :mod:`repro.robust.chaos` can
deterministically rewrite jobs, break pools mid-drain or corrupt cache
entries.  The per-sample hot path has no hook sites.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import signal as _signal
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

from repro import chaoshooks
from repro.core.errors import (DeadlineExceeded, ReproError,
                               WorkerCrashError)
from repro.obs import counters as obs_counters
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.signal.context import DesignContext

__all__ = ["SimConfig", "SimOutcome", "SimCache", "PoolPolicy",
           "run_simulations", "default_workers", "fingerprint"]


@dataclass(frozen=True)
class SimConfig:
    """One independent simulation job.

    ``dtypes`` / ``ranges`` / ``errors`` are the annotation maps applied
    after ``design.build()`` (see
    :class:`~repro.refine.flow.Annotations`).  ``factory_seed`` requests
    the runner's ``seeded_factory`` (stimulus re-seeding, e.g.
    :class:`~repro.robust.faults.SeedPerturb`).  With ``catch_errors``
    set, a :class:`~repro.core.errors.ReproError` aborts only this job
    and lands in ``SimOutcome.error``; otherwise it propagates to the
    caller exactly like a serial run.

    ``deadline_seconds`` bounds the job's wall clock: the executing
    process arms a ``SIGALRM``-based one-shot timer around the
    simulation and aborts with
    :class:`~repro.core.errors.DeadlineExceeded` when it fires (an
    error outcome under ``catch_errors``, a raised exception
    otherwise).  The alarm needs the job to run on a main thread —
    pool workers and the serial runner both qualify.
    """

    label: str = "sim"
    dtypes: dict = field(default_factory=dict)
    ranges: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)
    n_samples: int = 2000
    seed: int = 1234
    overflow_action: str = "record"
    guard_action: str = "raise"
    faults: tuple = ()
    factory_seed: object = None
    catch_errors: bool = False
    #: wall-clock budget of this one job, in seconds (None = unbounded).
    deadline_seconds: object = None


@dataclass(frozen=True)
class SimOutcome:
    """Result of one :class:`SimConfig` job.

    ``records`` is the :func:`~repro.refine.monitors.collect` snapshot,
    ``fault_fired`` holds each fault's ``n_fired`` counter as observed
    *inside* the run (the caller's fault objects are not mutated when
    the job ran in a worker process — always read the counts from
    here).
    """

    label: str
    records: dict
    output: object
    guard_trips: int = 0
    fault_fired: tuple = ()
    error: object = None
    #: machine-readable failure class when ``error`` is set:
    #: "deadline" (per-job deadline hit), "crash" (worker died and the
    #: job was quarantined), "error" (a ReproError inside the design).
    error_kind: object = None
    #: Observability events recorded inside a pool worker, shipped back
    #: to the parent recorder (empty for serial runs — those record
    #: directly into the live recorder).
    obs_events: tuple = ()

    @property
    def completed(self):
        return self.error is None

    def sqnr_db(self, name=None):
        """Output (or named signal) SQNR of this run."""
        key = self.output if name is None else name
        return self.records[key].sqnr_db()


@dataclass(frozen=True)
class PoolPolicy:
    """Recovery knobs of the fork-pool execution path.

    ``max_retries`` bounds how often a job whose worker died is
    re-submitted before quarantine; delays between attempts come from
    ``backoff`` (a :class:`repro.robust.retry.BackoffPolicy`, a
    conservative default when None).  ``max_respawns`` caps worker-pool
    rebuilds per batch (a runaway crasher cannot fork-bomb the host).
    ``deadline_grace`` is the parent-side slack on top of twice a job's
    deadline before its worker is hard-killed in the isolation phase —
    the safety net for code that blocks ``SIGALRM`` delivery.
    """

    max_retries: int = 1
    max_respawns: int = 16
    backoff: object = None
    deadline_grace: float = 5.0

    def backoff_policy(self):
        if self.backoff is not None:
            return self.backoff
        # Imported lazily: repro.robust.faults imports this runner, so a
        # module-scope import back into repro.robust would be circular.
        from repro.robust.retry import BackoffPolicy
        return BackoffPolicy(base=0.05, factor=2.0, cap=1.0)


# -- worker state ------------------------------------------------------------

# Factories are installed here before the pool forks, so child processes
# inherit them through copy-on-write instead of pickling.  The serial
# fallback uses the same slot for symmetry.  ``parent_pid`` lets code
# running inside a job (e.g. the worker_crash fault) tell a pool worker
# from an in-process run.
_WORKER_STATE = {"factory": None, "seeded_factory": None,
                 "parent_pid": None}


def in_worker():
    """True while executing a job in a forked pool worker."""
    parent = _WORKER_STATE["parent_pid"]
    return parent is not None and os.getpid() != parent


class _DeadlineGuard:
    """Arms a one-shot ``SIGALRM`` wall-clock alarm around a job.

    Only arms on a main thread (signal handlers cannot be installed
    elsewhere); a no-op otherwise, and for ``seconds=None``.
    """

    __slots__ = ("seconds", "label", "_armed", "_old")

    def __init__(self, seconds, label):
        self.seconds = seconds
        self.label = label
        self._armed = False
        self._old = None

    def _fire(self, signum, frame):
        raise DeadlineExceeded(
            "simulation %r exceeded its %.3gs deadline"
            % (self.label, self.seconds),
            deadline=self.seconds, label=self.label)

    def __enter__(self):
        if (self.seconds is not None and self.seconds > 0
                and threading.current_thread() is threading.main_thread()):
            self._old = _signal.signal(_signal.SIGALRM, self._fire)
            _signal.setitimer(_signal.ITIMER_REAL, float(self.seconds))
            self._armed = True
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._armed:
            _signal.setitimer(_signal.ITIMER_REAL, 0.0)
            _signal.signal(_signal.SIGALRM, self._old)
            self._armed = False
        return False


def _execute(config):
    """Run one job against the installed factory (worker entry point)."""
    # Imported lazily: repro.refine's own modules (sensitivity, the
    # optimizer) import this runner at module scope, so importing the
    # refine package back at *our* module scope would be circular.
    from repro.refine.flow import Annotations
    from repro.refine.monitors import collect

    factory = _WORKER_STATE["factory"]
    seeded = _WORKER_STATE["seeded_factory"]
    faults = config.faults
    with obs_trace.span("parallel.job", label=config.label,
                        samples=config.n_samples, seed=config.seed) as sp:
        try:
            with _DeadlineGuard(config.deadline_seconds, config.label):
                ctx = DesignContext(config.label, seed=config.seed,
                                    overflow_action=config.overflow_action,
                                    guard_action=config.guard_action)
                with ctx:
                    if config.factory_seed is not None and seeded is not None:
                        design = seeded(config.factory_seed)
                    else:
                        design = factory()
                    design.build(ctx)
                    Annotations(dtypes=config.dtypes, ranges=config.ranges,
                                errors=config.errors).apply(ctx)
                    for fault in faults:
                        fault.install(ctx, design)
                    design.run(ctx, config.n_samples)
                records = collect(ctx)
            output = getattr(design, "output", None)
            sp.set(signals=len(records), guard_trips=ctx.guard_trip_count)
            obs_metrics.emit(ctx, label=config.label)
            return SimOutcome(config.label, records, output,
                              ctx.guard_trip_count,
                              tuple(f.n_fired for f in faults), None)
        except ReproError as exc:
            if not config.catch_errors:
                raise
            kind = "deadline" if isinstance(exc, DeadlineExceeded) \
                else "error"
            sp.set(error=str(exc), error_kind=kind)
            return SimOutcome(config.label, {}, None, 0,
                              tuple(getattr(f, "n_fired", None)
                                    for f in faults),
                              str(exc), error_kind=kind)


def _execute_remote(config):
    """Pool-worker wrapper: run a job and ship its trace events home.

    The worker inherits the parent's recorder (and any open span stack)
    through the fork, so spans minted here nest correctly under the
    parent's ``parallel.batch`` span — but the events land in the
    *worker's* copy of the recorder.  This wrapper marks the recorder
    before the job and attaches everything recorded since to the
    outcome, which is the only thing that crosses the pipe.
    """
    rec = obs_trace.current_recorder()
    if rec is None:
        return _execute(config)
    mark = rec.mark()
    outcome = _execute(config)
    events = tuple(rec.events_since(mark))
    if events:
        outcome = replace(outcome, obs_events=events)
    return outcome


def _quarantine_outcome(config, message):
    """Error outcome standing in for a job whose worker died."""
    return SimOutcome(config.label, {}, None, 0,
                      tuple(getattr(f, "n_fired", None)
                            for f in config.faults),
                      message, error_kind="crash")


# -- worker count ------------------------------------------------------------

def default_workers():
    """Auto worker count: ``REPRO_WORKERS`` env, else visible CPUs."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _fork_available():
    if os.environ.get("REPRO_PARALLEL") == "0":
        return False
    return "fork" in multiprocessing.get_all_start_methods()


# -- fingerprint cache -------------------------------------------------------

def _callable_fingerprint(fn):
    """Best-effort stable identity of a factory callable.

    A ``fingerprint`` attribute on the factory wins (set one when
    constructing factories dynamically).  Otherwise the qualified name
    plus the compiled bytecode and closure contents are hashed, so two
    distinct lambdas with the same name but different captured values do
    not collide.
    """
    if fn is None:
        return "none"
    fp = getattr(fn, "fingerprint", None)
    if fp is not None:
        return str(fp)
    parts = [getattr(fn, "__module__", "") or "",
             getattr(fn, "__qualname__", None) or repr(fn)]
    code = getattr(fn, "__code__", None)
    if code is not None:
        parts.append(hashlib.sha256(code.co_code).hexdigest())
        parts.append(repr(code.co_consts))
    cells = getattr(fn, "__closure__", None)
    if cells:
        try:
            parts.append(repr([c.cell_contents for c in cells]))
        except ValueError:  # empty cell
            parts.append("<unset-cell>")
    return "|".join(parts)


def _dtype_key(dt):
    return (dt.n, dt.f, dt.vtype, dt.msbspec, dt.lsbspec)


def fingerprint(design_factory, config, seeded_factory=None,
                engine="interpreted"):
    """Cache key of one job: design identity + everything that shapes it.

    Identical jobs collide (that is the point of the cache); any knob
    that could change the numbers separates them.  ``deadline_seconds``
    is deliberately excluded: a deadline decides whether a run
    completes, never what a completed run computes, so journaled
    outcomes stay replayable when the deadline is tuned between
    sessions.

    ``engine="compiled"`` folds the engine identity *and* the compiler
    version into the key: compiled outcomes are bit-identical to
    interpreted ones by contract, but a lowering bug fixed by a compiler
    bump must never replay stale journaled results produced by the old
    lowering.  Interpreted keys are unchanged from before the engine
    existed, so old journals keep replaying.

    >>> def factory():
    ...     pass
    >>> a = SimConfig(label="a", n_samples=100, seed=1)
    >>> b = SimConfig(label="b", n_samples=100, seed=1)
    >>> fingerprint(factory, a) == fingerprint(factory, b)
    True
    >>> c = SimConfig(label="a", n_samples=100, seed=2)
    >>> fingerprint(factory, a) == fingerprint(factory, c)
    False
    """
    h = hashlib.sha256()

    def feed(tag, value):
        h.update(("%s=%r;" % (tag, value)).encode())

    feed("factory", _callable_fingerprint(design_factory))
    if config.factory_seed is not None:
        feed("seeded", _callable_fingerprint(seeded_factory))
        feed("factory_seed", config.factory_seed)
    feed("dtypes", sorted((k, _dtype_key(v))
                          for k, v in config.dtypes.items()))
    feed("ranges", sorted(config.ranges.items()))
    feed("errors", sorted(config.errors.items()))
    feed("n_samples", config.n_samples)
    feed("seed", config.seed)
    feed("overflow", config.overflow_action)
    feed("guard", config.guard_action)
    feed("faults", tuple(repr(f) for f in config.faults))
    if engine == "compiled":
        from repro.compile import COMPILER_VERSION
        feed("engine", "compiled:%d" % COMPILER_VERSION)
    return h.hexdigest()


class SimCache:
    """In-memory LRU result cache for :func:`run_simulations`.

    Keys are :func:`fingerprint` digests; values are completed
    :class:`SimOutcome` objects (failed runs are never cached).  Pass
    the same instance across :func:`analyze_sensitivity` /
    :func:`optimize_wordlengths` calls to skip re-measuring type maps
    the refinement loop has already probed.  At ``max_entries`` the
    least-recently-*used* entry is evicted (a hit refreshes its
    recency), so a long-running optimizer keeps its working set even
    when the total probe count far exceeds the capacity.

    Entries are stored as ``(pickled payload, sha256)`` pairs and the
    checksum is verified on every hit: a corrupted payload (bit rot, a
    buggy sharer of the process, the chaos injector) is detected,
    evicted and counted (:attr:`n_corrupt`, ``cache.corrupt`` counter)
    — the lookup becomes a miss and the job recomputes instead of the
    caller unpickling garbage.  An outcome that cannot be pickled is
    silently not cached (the batch still returns it normally).  The
    cost is one pickle round-trip per *job-level* hit, far below the
    simulation it saves.
    """

    def __init__(self, max_entries=4096):
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        #: entries evicted because their checksum no longer matched.
        self.n_corrupt = 0
        self._store = OrderedDict()

    def _drop_corrupt(self, key):
        del self._store[key]
        self.n_corrupt += 1
        self.misses += 1
        obs_counters.inc("cache.corrupt")
        obs_counters.inc("cache.misses")

    def get(self, key):
        entry = self._store.get(key)
        if entry is not None:
            hook = chaoshooks.ACTIVE
            if hook is not None and hook.on_cache_lookup(key):
                # Simulated concurrent eviction: the entry vanishes
                # between the presence check and the read.
                del self._store[key]
                entry = None
        if entry is None:
            self.misses += 1
            obs_counters.inc("cache.misses")
            return None
        payload, sha = entry
        if hashlib.sha256(payload).hexdigest() != sha:
            self._drop_corrupt(key)
            return None
        try:
            outcome = pickle.loads(payload)
        except Exception:
            # A payload that checksums but does not unpickle means the
            # entry was stored corrupt; treat it the same way.
            self._drop_corrupt(key)
            return None
        self.hits += 1
        obs_counters.inc("cache.hits")
        self._store.move_to_end(key)
        return outcome

    def put(self, key, outcome):
        if outcome.error is not None:
            return
        try:
            payload = pickle.dumps(outcome,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return
        # Checksum the clean payload *before* the chaos hook may damage
        # it — otherwise injected corruption would be undetectable.
        sha = hashlib.sha256(payload).hexdigest()
        hook = chaoshooks.ACTIVE
        if hook is not None:
            payload = hook.on_cache_store(key, payload)
        if key in self._store:
            self._store.move_to_end(key)
        elif len(self._store) >= self.max_entries:
            self._store.popitem(last=False)   # least recently used
        self._store[key] = (payload, sha)

    def stats(self):
        """Measurable snapshot of the cache's effectiveness.

        Returned dict: ``entries`` / ``max_entries`` (occupancy),
        ``hits`` / ``misses`` / ``n_corrupt`` (lifetime tallies) and
        ``hit_rate`` (0.0 when the cache was never consulted).  The
        same tallies stream into the ``cache.hits`` / ``cache.misses``
        / ``cache.corrupt`` process-wide counters
        (:mod:`repro.obs.counters`); this snapshot is the per-instance
        view a service exposes per store.
        """
        total = self.hits + self.misses
        return {
            "entries": len(self._store),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "n_corrupt": self.n_corrupt,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def clear(self):
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.n_corrupt = 0

    def __len__(self):
        return len(self._store)

    def __contains__(self, key):
        return key in self._store


# -- the runner --------------------------------------------------------------

#: Failures of the parent<->worker pipe itself (config or outcome not
#: picklable).  Such a job re-runs in-process; everything else stays in
#: the pool.  TypeError/AttributeError cover CPython's non-PicklingError
#: "cannot pickle ..." paths; a genuine TypeError from design code ends
#: up re-raised by the in-process re-run with a clean traceback.
_PIPE_ERRORS = (pickle.PicklingError, TypeError, AttributeError)


def _kill_pool_workers(pool):
    """Hard-kill every worker process of a pool (deadline escalation)."""
    procs = getattr(pool, "_processes", None)
    if not procs:
        return 0
    n = 0
    for proc in list(procs.values()):
        try:
            proc.kill()
            n += 1
        except Exception:
            pass
    return n


class _BatchExecutor:
    """One batch's pool execution state: harvest, quarantine, retries."""

    def __init__(self, n_workers, policy, on_complete, diagnostics,
                 batch_span):
        self.n_workers = n_workers
        self.policy = policy or PoolPolicy()
        self.on_complete = on_complete
        self.diagnostics = diagnostics
        self.batch_span = batch_span
        self.mp_ctx = multiprocessing.get_context("fork")
        #: jobs that must re-run in-process (pipe failures).
        self.serial_jobs = []
        #: (idx, exception) for catch_errors=False jobs that failed.
        self.fatal = []
        self.n_retries = 0
        self.n_quarantined = 0
        self.n_respawns = 0
        self.recovered = False

    # -- reporting ---------------------------------------------------------

    def _diag(self, category, severity, message, **data):
        if self.diagnostics is not None:
            self.diagnostics.add(category, severity, None, message, **data)

    def _note_retry(self, cfg, attempt, delay):
        self.n_retries += 1
        self.recovered = True
        obs_counters.inc("parallel.retries")
        self.batch_span.event("parallel.retry", label=cfg.label,
                              attempt=attempt, delay=delay)
        self._diag("retry", "info",
                   "worker running job %r died; retry %d/%d after %.3gs "
                   "backoff" % (cfg.label, attempt,
                                self.policy.max_retries, delay),
                   label=cfg.label, attempt=attempt, delay=delay)

    def _note_pipe_fallback(self, cfg, exc):
        self.recovered = True
        obs_counters.inc("parallel.pickling_fallbacks")
        self.batch_span.event("parallel.pipe_fallback", label=cfg.label,
                              exc=str(exc))
        self._diag("retry", "info",
                   "job %r could not cross the worker pipe (%s: %s); "
                   "re-running in-process"
                   % (cfg.label, type(exc).__name__, exc),
                   label=cfg.label)

    def _quarantine(self, idx, key, cfg, attempts, reason):
        self.n_quarantined += 1
        self.recovered = True
        obs_counters.inc("parallel.quarantined")
        self.batch_span.event("parallel.quarantine", label=cfg.label,
                              attempts=attempts, reason=reason)
        self._diag("quarantine", "warning",
                   "job %r quarantined after %d attempt(s): %s"
                   % (cfg.label, attempts, reason),
                   label=cfg.label, attempts=attempts, reason=reason)
        message = ("worker crashed (%s); job quarantined after %d "
                   "attempt(s)" % (reason, attempts))
        if cfg.catch_errors:
            self.on_complete(idx, key, cfg, _quarantine_outcome(cfg, message))
        else:
            self.fatal.append((idx, WorkerCrashError(
                "job %r: %s" % (cfg.label, message), label=cfg.label,
                attempts=attempts)))

    def _note_respawn(self):
        self.n_respawns += 1
        obs_counters.inc("parallel.pool_respawns")

    # -- phase A: shared pool ---------------------------------------------

    def run_shared(self, pending):
        """All jobs through one shared pool; harvested incrementally.

        Returns the (idx-sorted) jobs left uncompleted by a pool break —
        empty on a clean batch.  Completed outcomes are delivered
        through ``on_complete`` the moment they arrive, so they survive
        any later failure.
        """
        leftovers = []
        pool = ProcessPoolExecutor(max_workers=self.n_workers,
                                   mp_context=self.mp_ctx)
        try:
            futures = {}
            try:
                for job in pending:
                    futures[pool.submit(_execute_remote, job[2])] = job
            except BrokenProcessPool:
                submitted = {id(job) for job in futures.values()}
                leftovers.extend(job for job in pending
                                 if id(job) not in submitted)
            not_done = set(futures)
            n_delivered = 0
            while not_done:
                done, not_done = wait(not_done,
                                      return_when=FIRST_COMPLETED)
                for fut in done:
                    idx, key, cfg = futures[fut]
                    try:
                        outcome = fut.result()
                    except BrokenProcessPool:
                        leftovers.append((idx, key, cfg))
                    except _PIPE_ERRORS as exc:
                        self._note_pipe_fallback(cfg, exc)
                        self.serial_jobs.append((idx, key, cfg))
                    except ReproError as exc:
                        self.fatal.append((idx, exc))
                    else:
                        self.on_complete(idx, key, cfg, outcome)
                        n_delivered += 1
                        hook = chaoshooks.ACTIVE
                        if hook is not None:
                            hook.on_pool_drain(pool, n_delivered)
        finally:
            pool.shutdown(wait=True)
        leftovers.sort(key=lambda job: job[0])
        return leftovers

    # -- phase B: isolation pools -----------------------------------------

    def run_isolated(self, jobs):
        """Suspect jobs in single-worker pools: exact crash attribution.

        Each pool runs one job at a time, so a ``BrokenProcessPool`` on
        a future names its poison job unambiguously.  Healthy suspects
        keep running in parallel (up to ``n_workers`` pools); a crasher
        is retried with backoff, then quarantined.  Jobs with a deadline
        get a parent-side escalation: a worker still alive past
        ``2 * deadline + grace`` is hard-killed and the job aborted as a
        deadline hit.
        """
        policy = self.policy
        backoff = policy.backoff_policy()
        queue = deque((idx, key, cfg, 0) for idx, key, cfg in jobs)
        n_pools = max(1, min(self.n_workers, len(queue)))
        pools = {}
        for slot in range(n_pools):
            pools[slot] = self._make_isolated_pool()
        free = [slot for slot, p in pools.items() if p is not None]
        inflight = {}

        def dispatch():
            while free and queue:
                slot = free.pop()
                idx, key, cfg, attempts = queue.popleft()
                fut = pools[slot].submit(_execute_remote, cfg)
                inflight[fut] = {"slot": slot, "idx": idx, "key": key,
                                 "cfg": cfg, "attempts": attempts,
                                 "t0": time.monotonic(), "killed": False}

        def kill_budget(cfg):
            d = cfg.deadline_seconds
            if d is None or d <= 0:
                return None
            return 2.0 * float(d) + policy.deadline_grace

        dispatch()
        while inflight:
            timeout = None
            now = time.monotonic()
            for info in inflight.values():
                budget = kill_budget(info["cfg"])
                if budget is None or info["killed"]:
                    continue
                left = max(0.1, info["t0"] + budget - now)
                timeout = left if timeout is None else min(timeout, left)
            done, _ = wait(set(inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            if not done:
                # No progress within the strictest parent-side budget:
                # hard-kill the overdue worker(s); their futures then
                # resolve as BrokenProcessPool and are handled below.
                now = time.monotonic()
                for fut, info in inflight.items():
                    budget = kill_budget(info["cfg"])
                    if (budget is not None and not info["killed"]
                            and now - info["t0"] >= budget):
                        info["killed"] = True
                        _kill_pool_workers(pools[info["slot"]])
                continue
            for fut in done:
                info = inflight.pop(fut)
                slot = info["slot"]
                idx, key, cfg = info["idx"], info["key"], info["cfg"]
                try:
                    outcome = fut.result()
                except BrokenProcessPool:
                    self._note_respawn()
                    pools[slot].shutdown(wait=False)
                    if self.n_respawns > policy.max_respawns:
                        pools[slot] = None
                    else:
                        pools[slot] = self._make_isolated_pool()
                    if pools[slot] is not None:
                        free.append(slot)
                    if info["killed"]:
                        self._deadline_kill(idx, key, cfg)
                    elif (info["attempts"] < policy.max_retries
                          and pools[slot] is not None):
                        attempts = info["attempts"] + 1
                        delay = backoff.delay(attempts, token=cfg.label)
                        self._note_retry(cfg, attempts, delay)
                        if delay > 0:
                            time.sleep(delay)
                        queue.append((idx, key, cfg, attempts))
                    else:
                        self._quarantine(idx, key, cfg,
                                         info["attempts"] + 1,
                                         "worker process died")
                except _PIPE_ERRORS as exc:
                    self._note_pipe_fallback(cfg, exc)
                    self.serial_jobs.append((idx, key, cfg))
                    free.append(slot)
                except ReproError as exc:
                    self.fatal.append((idx, exc))
                    free.append(slot)
                else:
                    self.on_complete(idx, key, cfg, outcome)
                    free.append(slot)
                dispatch()
        for slot, pool in pools.items():
            if pool is not None:
                pool.shutdown(wait=True)
        # Pool budget exhausted with jobs still queued: quarantine them.
        while queue:
            idx, key, cfg, attempts = queue.popleft()
            self._quarantine(idx, key, cfg, attempts + 1,
                             "pool respawn budget exhausted")

    def _make_isolated_pool(self):
        try:
            return ProcessPoolExecutor(max_workers=1, mp_context=self.mp_ctx)
        except OSError:
            return None

    def _deadline_kill(self, idx, key, cfg):
        """A worker ignored its in-job alarm and was killed by us."""
        message = ("simulation %r exceeded its %.3gs deadline (worker "
                   "killed by the parent)"
                   % (cfg.label, cfg.deadline_seconds))
        if cfg.catch_errors:
            outcome = SimOutcome(cfg.label, {}, None, 0,
                                 tuple(getattr(f, "n_fired", None)
                                       for f in cfg.faults),
                                 message, error_kind="deadline")
            self.on_complete(idx, key, cfg, outcome)
        else:
            self.fatal.append((idx, DeadlineExceeded(
                message, deadline=cfg.deadline_seconds, label=cfg.label)))


def _run_serial(pending, on_complete):
    for idx, key, cfg in pending:
        on_complete(idx, key, cfg, _execute(cfg))


def run_simulations(design_factory, configs, workers=None, cache=None,
                    seeded_factory=None, journal=None, diagnostics=None,
                    pool_policy=None, engine=None):
    """Run a batch of simulation jobs, in parallel when it pays off.

    ``design_factory`` is called (in each worker) to build a fresh
    design per job; ``configs`` is an iterable of :class:`SimConfig`.
    ``workers=None`` auto-sizes to the visible CPUs (serial on a 1-CPU
    box); any explicit ``workers >= 2`` forces a pool when ``fork`` is
    available.  ``cache`` is an optional :class:`SimCache`.

    ``engine`` selects the execution engine (``None`` defers to
    :func:`repro.sim.engine.default_engine`).  With ``"compiled"``,
    eligible jobs are grouped and batch-executed by :mod:`repro.compile`
    — bit-identically to the interpreted path, with automatic per-group
    fallback — and only the remainder (ineligible jobs, e.g. fault
    campaigns) goes through the pool/serial machinery below, so the
    compiled batch axis *composes* with process-level parallelism
    instead of replacing it.

    ``journal`` (a :class:`repro.robust.recovery.Journal` or a path)
    makes the batch resumable: completed outcomes are appended to the
    journal *as they arrive* and replayed bit-exactly — without
    re-simulating — on any later call that produces the same job
    fingerprints.  ``diagnostics`` (a
    :class:`repro.robust.diagnostics.Diagnostics`) collects stable-coded
    recovery events; ``pool_policy`` tunes retry/quarantine behaviour
    (:class:`PoolPolicy`).

    Returns a list of :class:`SimOutcome` in config order — the same
    values a serial loop would produce, regardless of worker count.
    Jobs whose worker crashed land as ``error_kind="crash"`` outcomes
    (under ``catch_errors``) or raise
    :class:`~repro.core.errors.WorkerCrashError` after the healthy rest
    of the batch has completed and been journaled.
    """
    from repro.sim.engine import resolve_engine

    engine = resolve_engine(engine)
    configs = list(configs)
    results = [None] * len(configs)

    if journal is not None and not hasattr(journal, "append"):
        from repro.robust.recovery import Journal
        journal = Journal(journal)

    need_key = cache is not None or journal is not None
    n_corrupt0 = getattr(cache, "n_corrupt", 0)
    pending = []
    n_cached = 0
    n_replayed = 0
    for idx, cfg in enumerate(configs):
        key = None
        if need_key:
            key = fingerprint(design_factory, cfg, seeded_factory,
                              engine=engine)
            hit = cache.get(key) if cache is not None else None
            if hit is None and journal is not None:
                hit = journal.get(key)
                if hit is not None:
                    n_replayed += 1
                    if cache is not None:
                        cache.put(key, hit)
            else:
                if hit is not None:
                    n_cached += 1
            if hit is not None:
                # Cached/journaled outcomes keep their original label;
                # re-label so the caller sees the name it asked for.
                results[idx] = hit if hit.label == cfg.label \
                    else replace(hit, label=cfg.label)
                continue
        pending.append((idx, key, cfg))

    hook = chaoshooks.ACTIVE
    if hook is not None:
        # Fault injection rewrites jobs *after* fingerprinting, so the
        # cache/journal keys of a chaos run match the fault-free run —
        # recovery must land on the same entries.
        pending = [(idx, key, hook.on_job(pos, cfg))
                   for pos, (idx, key, cfg) in enumerate(pending)]

    with obs_trace.span("parallel.batch", jobs=len(configs),
                        cached=n_cached, replayed=n_replayed,
                        engine=engine) as batch_span:
        if n_replayed:
            obs_counters.inc("journal.replays", n_replayed)
            batch_span.event("journal.replay", count=n_replayed,
                             path=getattr(journal, "path", None))
            if diagnostics is not None:
                diagnostics.add(
                    "journal", "info", None,
                    "replayed %d completed outcome(s) from journal %s; "
                    "%d job(s) still to run"
                    % (n_replayed, getattr(journal, "path", "<memory>"),
                       len(pending)),
                    replayed=n_replayed, pending=len(pending))
        n_corrupt = getattr(cache, "n_corrupt", 0) - n_corrupt0
        if n_corrupt:
            batch_span.event("cache.corrupt", count=n_corrupt)
            if diagnostics is not None:
                diagnostics.add(
                    "cache-corrupt", "warning", None,
                    "%d cached outcome(s) failed checksum verification; "
                    "evicted and recomputed" % n_corrupt,
                    count=n_corrupt)
        if not pending:
            batch_span.set(mode="replayed" if n_replayed else "cached",
                           executed=0)
            return results

        executed = []

        def on_complete(idx, key, cfg, outcome):
            """Deliver one outcome: record, journal, count, diagnose."""
            results[idx] = outcome
            executed.append(idx)
            if outcome.error_kind == "deadline":
                obs_counters.inc("parallel.deadline_hits")
                batch_span.event("parallel.deadline", label=cfg.label,
                                 deadline=cfg.deadline_seconds)
                if diagnostics is not None:
                    diagnostics.add(
                        "deadline", "warning", None,
                        "job %r aborted by its %.3gs deadline: %s"
                        % (cfg.label, cfg.deadline_seconds or 0.0,
                           outcome.error),
                        label=cfg.label, deadline=cfg.deadline_seconds)
            if cache is not None and key is not None:
                cache.put(key, outcome)
            if journal is not None and key is not None:
                journal.append(key, outcome)
                if (getattr(journal, "degraded", False)
                        and not getattr(journal, "_degrade_noted", True)):
                    # One warning for the whole fan-out, not one per job.
                    journal._degrade_noted = True
                    batch_span.event("journal.degraded",
                                     path=journal.path,
                                     error=str(journal.io_error))
                    if diagnostics is not None:
                        diagnostics.add(
                            "journal-degraded", "warning", None,
                            "journal %s hit an I/O error (%s); continuing "
                            "in-memory — completed outcomes replay within "
                            "this process but will not survive it"
                            % (journal.path, journal.io_error),
                            path=journal.path, error=str(journal.io_error))

        _WORKER_STATE["factory"] = design_factory
        _WORKER_STATE["seeded_factory"] = seeded_factory
        _WORKER_STATE["parent_pid"] = os.getpid()
        mode = "serial"
        fatal = []
        try:
            if engine == "compiled" and pending:
                from repro.compile import run_compiled_pending
                pending = run_compiled_pending(design_factory,
                                               seeded_factory, pending,
                                               on_complete, diagnostics,
                                               _execute)
                if not pending:
                    mode = "compiled"
            n_workers = default_workers() if workers is None \
                else int(workers)
            n_workers = min(n_workers, len(pending))
            if pending and n_workers >= 2 and _fork_available():
                exe = _BatchExecutor(n_workers, pool_policy, on_complete,
                                     diagnostics, batch_span)
                try:
                    mode = "pool"
                    leftovers = exe.run_shared(pending)
                    if leftovers:
                        exe._note_respawn()
                        exe.run_isolated(leftovers)
                    if exe.serial_jobs:
                        exe.serial_jobs.sort(key=lambda job: job[0])
                        _run_serial(exe.serial_jobs, on_complete)
                    if exe.recovered:
                        mode = "pool-recovered"
                    fatal = exe.fatal
                    batch_span.set(retries=exe.n_retries,
                                   quarantined=exe.n_quarantined,
                                   respawns=exe.n_respawns)
                except OSError:
                    # Pool infrastructure unavailable (fork failure):
                    # jobs are pure, so running the remainder serially
                    # is safe — and everything already completed stays
                    # completed.
                    mode = "serial-fallback"
                    remaining = [job for job in pending
                                 if results[job[0]] is None]
                    _run_serial(remaining, on_complete)
            else:
                _run_serial(pending, on_complete)
        finally:
            _WORKER_STATE["factory"] = None
            _WORKER_STATE["seeded_factory"] = None
            _WORKER_STATE["parent_pid"] = None
        batch_span.set(mode=mode, workers=n_workers,
                       executed=len(executed))

        rec = obs_trace.current_recorder()
        if rec is not None:
            # Merge worker-recorded events into the parent trace, in job
            # order (worker span ids embed the worker pid, so they
            # cannot collide with ids minted here).  Only freshly
            # executed outcomes merge — replayed ones already did, in
            # the run that produced them.
            for idx in sorted(executed):
                outcome = results[idx]
                if outcome is not None and outcome.obs_events:
                    rec.extend(outcome.obs_events)

        if journal is not None:
            skipped_before = getattr(journal, "n_compact_skipped", 0)
            dropped = getattr(journal, "maybe_compact", lambda: 0)()
            if dropped:
                batch_span.event("journal.compact", dropped=dropped)
                if diagnostics is not None:
                    diagnostics.add(
                        "journal-compact", "info", None,
                        "journal %s compacted: %d superseded record(s) "
                        "dropped" % (journal.path, dropped),
                        dropped=dropped)
            elif getattr(journal, "n_compact_skipped", 0) > skipped_before:
                batch_span.event("journal.compact_contended")
                if diagnostics is not None:
                    diagnostics.add(
                        "journal-compact", "warning", None,
                        "journal %s compaction skipped: another process "
                        "holds the compaction lock (their rewrite serves "
                        "both)" % journal.path, contended=True)

        if fatal:
            # The rest of the batch is complete (and journaled); now
            # surface the first failure in job order, as a serial loop
            # would have.
            fatal.sort(key=lambda pair: pair[0])
            raise fatal[0][1]
    return results
