"""Deterministic parallel re-simulation fan-out.

The refinement loop is simulation-hungry: a sensitivity sweep costs
``2N + 1`` runs, the greedy wordlength optimizer probes every candidate
signal per move, and a fault campaign re-simulates once per fault.  All
of those runs are *independent* — same design factory, different
annotations / seeds / faults — which makes them embarrassingly
parallel.

:func:`run_simulations` executes a batch of :class:`SimConfig` jobs and
returns one :class:`SimOutcome` per job, in order.  Three execution
strategies, picked automatically:

* **fork pool** — a ``ProcessPoolExecutor`` on the ``fork`` start
  method.  The design factory is stashed in module state *before* the
  workers fork, so arbitrary (even unpicklable) factories are inherited
  by the children for free; only the configs and outcomes cross the
  pipe.  Results are deterministic because every job carries its own
  stimulus seed — scheduling order cannot change the numbers.
* **serial fallback** — when ``fork`` is unavailable (Windows/macOS
  spawn), only one CPU is visible, ``workers <= 1``, or the pool dies
  (e.g. an outcome fails to pickle), the same jobs run in-process.
  Bit-identical results either way.
* **result cache** — an optional :class:`SimCache` keyed by a
  fingerprint of (design factory, annotations, samples, seed, faults).
  The optimizer re-probes many type maps it has already measured; the
  cache turns those into dictionary hits.

Environment knobs: ``REPRO_WORKERS`` overrides the auto worker count,
``REPRO_PARALLEL=0`` forces the serial path.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

from repro.core.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.signal.context import DesignContext

__all__ = ["SimConfig", "SimOutcome", "SimCache", "run_simulations",
           "default_workers", "fingerprint"]


@dataclass(frozen=True)
class SimConfig:
    """One independent simulation job.

    ``dtypes`` / ``ranges`` / ``errors`` are the annotation maps applied
    after ``design.build()`` (see
    :class:`~repro.refine.flow.Annotations`).  ``factory_seed`` requests
    the runner's ``seeded_factory`` (stimulus re-seeding, e.g.
    :class:`~repro.robust.faults.SeedPerturb`).  With ``catch_errors``
    set, a :class:`~repro.core.errors.ReproError` aborts only this job
    and lands in ``SimOutcome.error``; otherwise it propagates to the
    caller exactly like a serial run.
    """

    label: str = "sim"
    dtypes: dict = field(default_factory=dict)
    ranges: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)
    n_samples: int = 2000
    seed: int = 1234
    overflow_action: str = "record"
    guard_action: str = "raise"
    faults: tuple = ()
    factory_seed: object = None
    catch_errors: bool = False


@dataclass(frozen=True)
class SimOutcome:
    """Result of one :class:`SimConfig` job.

    ``records`` is the :func:`~repro.refine.monitors.collect` snapshot,
    ``fault_fired`` holds each fault's ``n_fired`` counter as observed
    *inside* the run (the caller's fault objects are not mutated when
    the job ran in a worker process — always read the counts from
    here).
    """

    label: str
    records: dict
    output: object
    guard_trips: int = 0
    fault_fired: tuple = ()
    error: object = None
    #: Observability events recorded inside a pool worker, shipped back
    #: to the parent recorder (empty for serial runs — those record
    #: directly into the live recorder).
    obs_events: tuple = ()

    @property
    def completed(self):
        return self.error is None

    def sqnr_db(self, name=None):
        """Output (or named signal) SQNR of this run."""
        key = self.output if name is None else name
        return self.records[key].sqnr_db()


# -- worker state ------------------------------------------------------------

# Factories are installed here before the pool forks, so child processes
# inherit them through copy-on-write instead of pickling.  The serial
# fallback uses the same slot for symmetry.
_WORKER_STATE = {"factory": None, "seeded_factory": None}


def _execute(config):
    """Run one job against the installed factory (worker entry point)."""
    # Imported lazily: repro.refine's own modules (sensitivity, the
    # optimizer) import this runner at module scope, so importing the
    # refine package back at *our* module scope would be circular.
    from repro.refine.flow import Annotations
    from repro.refine.monitors import collect

    factory = _WORKER_STATE["factory"]
    seeded = _WORKER_STATE["seeded_factory"]
    faults = config.faults
    with obs_trace.span("parallel.job", label=config.label,
                        samples=config.n_samples, seed=config.seed) as sp:
        try:
            ctx = DesignContext(config.label, seed=config.seed,
                                overflow_action=config.overflow_action,
                                guard_action=config.guard_action)
            with ctx:
                if config.factory_seed is not None and seeded is not None:
                    design = seeded(config.factory_seed)
                else:
                    design = factory()
                design.build(ctx)
                Annotations(dtypes=config.dtypes, ranges=config.ranges,
                            errors=config.errors).apply(ctx)
                for fault in faults:
                    fault.install(ctx, design)
                design.run(ctx, config.n_samples)
            records = collect(ctx)
            output = getattr(design, "output", None)
            sp.set(signals=len(records), guard_trips=ctx.guard_trip_count)
            obs_metrics.emit(ctx, label=config.label)
            return SimOutcome(config.label, records, output,
                              ctx.guard_trip_count,
                              tuple(f.n_fired for f in faults), None)
        except ReproError as exc:
            if not config.catch_errors:
                raise
            sp.set(error=str(exc))
            return SimOutcome(config.label, {}, None, 0,
                              tuple(getattr(f, "n_fired", None)
                                    for f in faults),
                              str(exc))


def _execute_remote(config):
    """Pool-worker wrapper: run a job and ship its trace events home.

    The worker inherits the parent's recorder (and any open span stack)
    through the fork, so spans minted here nest correctly under the
    parent's ``parallel.batch`` span — but the events land in the
    *worker's* copy of the recorder.  This wrapper marks the recorder
    before the job and attaches everything recorded since to the
    outcome, which is the only thing that crosses the pipe.
    """
    rec = obs_trace.current_recorder()
    if rec is None:
        return _execute(config)
    mark = rec.mark()
    outcome = _execute(config)
    events = tuple(rec.events_since(mark))
    if events:
        outcome = replace(outcome, obs_events=events)
    return outcome


# -- worker count ------------------------------------------------------------

def default_workers():
    """Auto worker count: ``REPRO_WORKERS`` env, else visible CPUs."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _fork_available():
    if os.environ.get("REPRO_PARALLEL") == "0":
        return False
    return "fork" in multiprocessing.get_all_start_methods()


# -- fingerprint cache -------------------------------------------------------

def _callable_fingerprint(fn):
    """Best-effort stable identity of a factory callable.

    A ``fingerprint`` attribute on the factory wins (set one when
    constructing factories dynamically).  Otherwise the qualified name
    plus the compiled bytecode and closure contents are hashed, so two
    distinct lambdas with the same name but different captured values do
    not collide.
    """
    if fn is None:
        return "none"
    fp = getattr(fn, "fingerprint", None)
    if fp is not None:
        return str(fp)
    parts = [getattr(fn, "__module__", "") or "",
             getattr(fn, "__qualname__", None) or repr(fn)]
    code = getattr(fn, "__code__", None)
    if code is not None:
        parts.append(hashlib.sha256(code.co_code).hexdigest())
        parts.append(repr(code.co_consts))
    cells = getattr(fn, "__closure__", None)
    if cells:
        try:
            parts.append(repr([c.cell_contents for c in cells]))
        except ValueError:  # empty cell
            parts.append("<unset-cell>")
    return "|".join(parts)


def _dtype_key(dt):
    return (dt.n, dt.f, dt.vtype, dt.msbspec, dt.lsbspec)


def fingerprint(design_factory, config, seeded_factory=None):
    """Cache key of one job: design identity + everything that shapes it.

    Identical jobs collide (that is the point of the cache); any knob
    that could change the numbers separates them:

    >>> def factory():
    ...     pass
    >>> a = SimConfig(label="a", n_samples=100, seed=1)
    >>> b = SimConfig(label="b", n_samples=100, seed=1)
    >>> fingerprint(factory, a) == fingerprint(factory, b)
    True
    >>> c = SimConfig(label="a", n_samples=100, seed=2)
    >>> fingerprint(factory, a) == fingerprint(factory, c)
    False
    """
    h = hashlib.sha256()

    def feed(tag, value):
        h.update(("%s=%r;" % (tag, value)).encode())

    feed("factory", _callable_fingerprint(design_factory))
    if config.factory_seed is not None:
        feed("seeded", _callable_fingerprint(seeded_factory))
        feed("factory_seed", config.factory_seed)
    feed("dtypes", sorted((k, _dtype_key(v))
                          for k, v in config.dtypes.items()))
    feed("ranges", sorted(config.ranges.items()))
    feed("errors", sorted(config.errors.items()))
    feed("n_samples", config.n_samples)
    feed("seed", config.seed)
    feed("overflow", config.overflow_action)
    feed("guard", config.guard_action)
    feed("faults", tuple(repr(f) for f in config.faults))
    return h.hexdigest()


class SimCache:
    """In-memory result cache for :func:`run_simulations`.

    Keys are :func:`fingerprint` digests; values are completed
    :class:`SimOutcome` objects (failed runs are never cached).  Pass
    the same instance across :func:`analyze_sensitivity` /
    :func:`optimize_wordlengths` calls to skip re-measuring type maps
    the refinement loop has already probed.
    """

    def __init__(self, max_entries=4096):
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self._store = {}

    def get(self, key):
        outcome = self._store.get(key)
        if outcome is None:
            self.misses += 1
        else:
            self.hits += 1
        return outcome

    def put(self, key, outcome):
        if outcome.error is not None:
            return
        if len(self._store) >= self.max_entries:
            # Drop the oldest entry (insertion order) — simple, bounded.
            self._store.pop(next(iter(self._store)))
        self._store[key] = outcome

    def clear(self):
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._store)

    def __contains__(self, key):
        return key in self._store


# -- the runner --------------------------------------------------------------

def _run_serial(pending):
    return [(idx, key, _execute(cfg)) for idx, key, cfg in pending]


def _run_pool(pending, n_workers):
    mp_ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=n_workers,
                             mp_context=mp_ctx) as pool:
        futures = [(idx, key, pool.submit(_execute_remote, cfg))
                   for idx, key, cfg in pending]
        done = [(idx, key, fut.result()) for idx, key, fut in futures]
    rec = obs_trace.current_recorder()
    if rec is not None:
        # Merge worker-recorded events into the parent trace, in job
        # order (worker span ids embed the worker pid, so they cannot
        # collide with ids minted here).
        for _idx, _key, outcome in done:
            if outcome.obs_events:
                rec.extend(outcome.obs_events)
    return done


def run_simulations(design_factory, configs, workers=None, cache=None,
                    seeded_factory=None):
    """Run a batch of simulation jobs, in parallel when it pays off.

    ``design_factory`` is called (in each worker) to build a fresh
    design per job; ``configs`` is an iterable of :class:`SimConfig`.
    ``workers=None`` auto-sizes to the visible CPUs (serial on a 1-CPU
    box); any explicit ``workers >= 2`` forces a pool when ``fork`` is
    available.  ``cache`` is an optional :class:`SimCache`.

    Returns a list of :class:`SimOutcome` in config order — the same
    values a serial loop would produce, regardless of worker count.
    """
    configs = list(configs)
    results = [None] * len(configs)

    pending = []
    for idx, cfg in enumerate(configs):
        key = None
        if cache is not None:
            key = fingerprint(design_factory, cfg, seeded_factory)
            hit = cache.get(key)
            if hit is not None:
                # Cached outcomes keep their original label; re-label so
                # the caller sees the name it asked for.
                results[idx] = hit if hit.label == cfg.label \
                    else replace(hit, label=cfg.label)
                continue
        pending.append((idx, key, cfg))

    with obs_trace.span("parallel.batch", jobs=len(configs),
                        cached=len(configs) - len(pending)) as batch_span:
        if not pending:
            return results

        _WORKER_STATE["factory"] = design_factory
        _WORKER_STATE["seeded_factory"] = seeded_factory
        mode = "serial"
        try:
            n_workers = default_workers() if workers is None \
                else int(workers)
            n_workers = min(n_workers, len(pending))
            if n_workers >= 2 and _fork_available():
                try:
                    mode = "pool"
                    done = _run_pool(pending, n_workers)
                except (BrokenProcessPool, pickle.PicklingError, OSError):
                    # Pool infrastructure failure (not a simulation
                    # error): jobs are pure, so re-running them serially
                    # is safe.
                    mode = "serial-fallback"
                    done = _run_serial(pending)
            else:
                done = _run_serial(pending)
        finally:
            _WORKER_STATE["factory"] = None
            _WORKER_STATE["seeded_factory"] = None
        batch_span.set(mode=mode, workers=n_workers,
                       executed=len(pending))

        for idx, key, outcome in done:
            results[idx] = outcome
            if cache is not None and key is not None:
                cache.put(key, outcome)
    return results
