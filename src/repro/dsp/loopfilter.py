"""Proportional-plus-integral loop filter (refinable block).

The integrator is a textbook accumulator: its quasi-analytical range
propagation explodes on feedback, making it (together with the NCO
phase) one of the signals the paper puts into saturation mode.
"""

from __future__ import annotations

from repro.signal import Reg, Sig

__all__ = ["PiLoopFilter"]


class PiLoopFilter:
    """Signals: ``lf.p`` (proportional), ``lf.i`` (integrator register)
    and ``lf.out`` (their sum)."""

    def __init__(self, prefix, kp, ki, ctx=None):
        self.prefix = prefix
        self.kp = float(kp)
        self.ki = float(ki)
        self.p = Sig("%s.p" % prefix, ctx=ctx)
        self.i = Reg("%s.i" % prefix, ctx=ctx)
        self.out = Sig("%s.out" % prefix, ctx=ctx)

    def step(self, err):
        """Update with one detector sample; returns the output signal."""
        self.p.assign(err * self.kp)
        self.i.assign(self.i + err * self.ki)
        self.out.assign(self.p + self.i)
        return self.out

    def signals(self):
        return [self.p, self.i, self.out]
