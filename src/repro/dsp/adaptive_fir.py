"""Fully adaptive N-tap LMS equalizer (extension of the paper's example).

The paper's motivational design adapts a single feedback coefficient;
real equalizers adapt the whole tap vector.  This design exercises the
methodology's array handling: *every* coefficient is a feedback signal,
so the quasi-analytical range propagation explodes on the entire ``c``
array at once and a single array-wide ``c.range(lo, hi)`` annotation
(the flow expands it to all elements) must resolve it.

Training is decision-directed after an initial known-symbol phase::

    d[0] = get(x); shift d
    v    = sum(d[i] * c[i])
    y    = slice(v)          (or the known training symbol)
    e    = v - y
    c[i] = c[i] - mu * e * d[i]
"""

from __future__ import annotations

import numpy as np

from repro.dsp.slicer import binary_slicer
from repro.refine.flow import Design
from repro.signal import Reg, RegArray, Sig, SigArray, select
from repro.signal.ops import gt

__all__ = ["AdaptiveLmsDesign"]


class AdaptiveLmsDesign(Design):
    """N adaptive taps over a dispersive binary PAM channel."""

    name = "adaptive-lms"
    inputs = ("x",)

    def __init__(self, n_taps=5, mu=1.0 / 64.0, channel=(0.2, 1.0, 0.3),
                 noise_std=0.05, n_train=500, seed=404):
        self.n_taps = int(n_taps)
        self.mu = float(mu)
        self.channel = tuple(channel)
        self.noise_std = float(noise_std)
        self.n_train = int(n_train)
        self.seed = seed
        self.output = "v[%d]" % self.n_taps
        self.decisions = []
        self.tx_symbols = []

    def _stimulus(self):
        rng = np.random.default_rng(self.seed)
        h = np.asarray(self.channel)
        state = np.zeros(len(h) - 1)
        while True:
            symbols = rng.choice((-1.0, 1.0), size=512)
            full = np.convolve(symbols, h)
            out = full[:512].copy()
            out[:len(state)] += state
            state = full[512:]
            out += rng.normal(0.0, self.noise_std, size=512)
            for a, x in zip(symbols, out):
                yield float(x), float(a)

    def build(self, ctx):
        n = self.n_taps
        self.x = Sig("x")
        self.d = RegArray("d", n)
        self.c = RegArray("c", n)
        self.v = SigArray("v", n + 1)
        self.y = Sig("y")
        self.e = Sig("e")
        center = n // 2
        self.c[center] = 1.0   # center-spike initialization
        ctx.tick()
        # Equalizer target delay: one input register + the channel's main
        # tap (index 1) + the center-spike position.
        self.delay = center + 2
        self._stim = self._stimulus()
        self._k = 0
        self.decisions = []
        self.tx_symbols = []

    def run(self, ctx, n_samples):
        n = self.n_taps
        d, c, v = self.d, self.c, self.v
        for _ in range(n_samples):
            xv, symbol = next(self._stim)
            self.tx_symbols.append(symbol)
            self.x.assign(xv)
            d[0] = self.x
            for i in range(n - 1, 0, -1):
                d[i] = d[i - 1]
            v[0] = 0.0
            for i in range(1, n + 1):
                v[i] = v[i - 1] + d[i - 1] * c[i - 1]
            self.y.assign(select(gt(v[n], 0.0), 1.0, -1.0))
            self.decisions.append(self.y.fx)
            # Training first (against the correctly delayed symbol),
            # then decision-directed.
            if self._k < self.n_train:
                idx = self._k - self.delay
                reference = self.tx_symbols[idx] if idx >= 0 else 0.0
            else:
                reference = self.y
            self.e.assign(v[n] - reference)
            for i in range(n):
                c[i] = c[i] - self.mu * self.e * d[i]
            self._k += 1
            ctx.tick()

    def error_rate(self, skip=None):
        """Decision error rate against the known symbols (with the
        equalizer's inherent delay aligned automatically)."""
        skip = self.n_train if skip is None else skip
        rx = np.sign(np.asarray(self.decisions[skip:]))
        tx = np.sign(np.asarray(
            self.tx_symbols[skip - self.delay:
                            skip - self.delay + len(rx)]))
        m = min(len(tx), len(rx))
        if m == 0:
            raise ValueError("no symbols to compare")
        return float(np.mean(tx[:m] != rx[:m]))
