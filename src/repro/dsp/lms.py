"""The paper's motivational example: a simplified symbol-spaced
decision-directed LMS equalizer (Section 3, Figure 1).

The behavioral description mirrors the paper's C code line by line::

    while (1) {
        d[0] = get(x);
        for (i = N-1; i > 0; i--) d[i] = d[i-1];
        v[0] = 0;
        for (i = 1; i <= N; i++) v[i] = v[i-1] + d[i-1] * c[i-1];
        w = v[N] - b * s;
        y = w > 0 ? 1 : -1;
        b = b + mu * s * (w - y);
        s = y;
        put(y);
    }

The input ``x`` is binary PAM through a dispersive channel plus AWGN;
the constant-coefficient FIR ``c`` equalizes the bulk of the ISI and the
single adaptive feedback coefficient ``b`` removes the residual
post-cursor ISI of the previous decision ``s``.
"""

from __future__ import annotations

import numpy as np

from repro.refine.flow import Design
from repro.signal import Reg, RegArray, Sig, SigArray, select
from repro.signal.ops import gt

__all__ = ["LmsEqualizerDesign", "pam_channel_stimulus",
           "PAPER_COEFFICIENTS", "PAPER_CHANNEL"]

#: FIR coefficients of the paper's example.  The third value is garbled
#: in the available copy of the paper; -0.02 is used (documented in
#: DESIGN.md).
PAPER_COEFFICIENTS = (-0.11, 1.2, -0.02)

#: Channel impulse response used to generate the stimulus ``x``:
#: a small precursor, the main tap one symbol later, and a small
#: post-cursor — the inverse-ish of the paper's equalizer coefficients.
#: The resulting |x| stays within the paper's x.range(-1.5, 1.5).
PAPER_CHANNEL = (0.1, 1.0, 0.05)


def pam_channel_stimulus(seed=2024, channel=PAPER_CHANNEL, noise_std=0.08,
                         block=1024):
    """Infinite generator of received PAM samples.

    Binary (+/-1) symbols are convolved with ``channel`` and disturbed by
    AWGN; samples are produced in blocks for speed but yielded one by one
    so designs can consume any number of them.
    """
    rng = np.random.default_rng(seed)
    h = np.asarray(channel, dtype=float)
    tail = np.zeros(len(h) - 1)
    while True:
        symbols = rng.choice((-1.0, 1.0), size=block)
        full = np.convolve(symbols, h)
        out = full[:block].copy()
        out[:len(tail)] += tail
        tail = full[block:]
        out += rng.normal(0.0, noise_std, size=block)
        yield from out.tolist()


class LmsEqualizerDesign(Design):
    """Paper Figure 1 as a refinable :class:`Design`."""

    name = "lms-equalizer"
    inputs = ("x",)
    output = "v[3]"

    def __init__(self, n_taps=3, coefficients=PAPER_COEFFICIENTS,
                 mu=1.0 / 32.0, stimulus=None, seed=2024):
        if len(coefficients) != n_taps:
            raise ValueError("need %d coefficients" % n_taps)
        self.n_taps = n_taps
        self.coefficients = tuple(coefficients)
        self.mu = mu
        self._stimulus_factory = (stimulus if stimulus is not None
                                  else lambda: pam_channel_stimulus(seed))
        self.output = "v[%d]" % n_taps
        self.decisions = []

    # -- Design protocol ---------------------------------------------------

    def build(self, ctx):
        n = self.n_taps
        # Constructor definitions, as in the paper.
        self.c = SigArray("c", n)
        self.d = RegArray("d", n)
        self.v = SigArray("v", n + 1)
        self.x = Sig("x")
        self.y = Sig("y")
        self.w = Sig("w")
        self.b = Reg("b")
        self.s = Reg("s")
        self.x.role = "input"
        self.v[n].role = "output"
        # Initialization of the constant coefficients.
        for i in range(n):
            self.c[i] = self.coefficients[i]
        self._stim = self._stimulus_factory()
        self.decisions = []

    def run(self, ctx, n_samples):
        n = self.n_taps
        c, d, v = self.c, self.d, self.v
        x, y, w, b, s = self.x, self.y, self.w, self.b, self.s
        mu = self.mu
        for _ in range(n_samples):
            x.assign(next(self._stim))
            d[0] = x
            for i in range(n - 1, 0, -1):
                d[i] = d[i - 1]
            v[0] = 0.0
            for i in range(1, n + 1):
                v[i] = v[i - 1] + d[i - 1] * c[i - 1]
            w.assign(v[n] - b * s)
            y.assign(select(gt(w, 0.0), 1.0, -1.0))
            b.assign(b + mu * s * (w - y))
            s.assign(y + 0.0)
            self.decisions.append(y.fx)
            ctx.tick()
