"""The paper's complex example: a timing recovery loop for PAM signals
(Figure 5, Section 6.1).

Structure (one processing step per receiver sample)::

    in --> matched filter --> Farrow interpolator --> out (ip.y)
                                   ^      |
                                  mu      | (at symbol strobes)
                                   |      v
           NCO <-- loop filter <-- Gardner timing error detector

The receiver samples arrive at nominally two samples per symbol but with
an unknown fractional phase and a clock frequency offset; the loop finds
and tracks the symbol instants.  The design instantiates ~60 named
signals subject to fixed-point refinement, like the paper's 61-signal
system.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.farrow import FarrowInterpolator
from repro.dsp.fir import FirFilter
from repro.dsp.loopfilter import PiLoopFilter
from repro.dsp.nco import Nco, WrappedNco
from repro.dsp.pam import ShapedPamStream
from repro.dsp.rrc import rrc_pulse, rrc_taps
from repro.dsp.slicer import binary_slicer
from repro.dsp.ted import GardnerTed
from repro.refine.flow import Design
from repro.signal import Reg, Sig

__all__ = ["TimingRecoveryDesign", "aligned_symbol_errors"]


class TimingRecoveryDesign(Design):
    """Paper Figure 5 as a refinable :class:`Design`."""

    name = "timing-recovery"
    inputs = ("in",)
    output = "ip.y"

    #: nominal NCO decrement: half a symbol per sample (2 samples/symbol).
    W_NOMINAL = 0.5

    def __init__(self, kp=0.005, ki=5e-5, timing_offset=0.3, clock_ppm=200.0,
                 noise_std=0.0, rolloff=0.5, mf_span=3, seed=77,
                 block=4096, nco_phase_dtype=None):
        self.kp = kp
        self.ki = ki
        self.timing_offset = timing_offset
        self.clock_ppm = clock_ppm
        self.noise_std = noise_std
        self.rolloff = rolloff
        self.mf_span = mf_span
        self.seed = seed
        self._block = block
        self.nco_phase_dtype = nco_phase_dtype
        self.decisions = []
        self.mu_trace = []
        self._stream = self._make_stream()

    # -- stimulus --------------------------------------------------------------

    def _make_stream(self):
        """Receiver samples: RRC-shaped PAM with timing/clock offset.

        The transmit side applies the RRC pulse only; the receiver's
        matched FIR completes the (near-)Nyquist raised cosine.
        """
        return ShapedPamStream(
            sps=2.0, rolloff=self.rolloff, span=8,
            timing_offset=self.timing_offset, clock_ppm=self.clock_ppm,
            noise_std=self.noise_std, seed=self.seed,
            pulse=lambda t: rrc_pulse(t, self.rolloff))

    @property
    def tx_symbols(self):
        """Transmitted symbols generated so far (for alignment checks)."""
        return self._stream.symbols

    # -- Design protocol ----------------------------------------------------------

    def build(self, ctx):
        self.x = Sig("in")
        self.x.role = "input"
        taps = rrc_taps(sps=2, span=self.mf_span, rolloff=self.rolloff)
        self.mf = FirFilter("mf", taps)
        self.ip = FarrowInterpolator("ip")
        self.ip.y.role = "output"
        self.yi_prev = Reg("ip.yprev")
        if self.nco_phase_dtype is not None:
            # Hardware-style modulo-1 phase word (paper Section 6.1: the
            # wrap happens through the type, which makes the coupled
            # error statistics of nco.eta diverge until error() is set).
            self.nco = WrappedNco("nco", self.nco_phase_dtype)
        else:
            self.nco = Nco("nco")
        self.strobe_d = Reg("nco.strobe")
        self.strobe_d2 = Reg("nco.strobe2")
        self.wc = Sig("nco.w")
        self.ted = GardnerTed("ted")
        self.lf = PiLoopFilter("lf", self.kp, self.ki)
        self.y = Sig("y")
        self._stream = self._make_stream()
        self._stim = iter(self._stream)
        self.decisions = []
        self.mu_trace = []

    def run(self, ctx, n_samples):
        x, mf, ip = self.x, self.mf, self.ip
        nco, ted, lf = self.nco, self.ted, self.lf
        for _ in range(n_samples):
            x.assign(next(self._stim))
            mf_out = mf.step(x)

            # Control word and NCO phase update (every sample).  The
            # loop filter output retards the NCO (subtracts) so that the
            # Gardner detector's stable zero falls on the pulse peaks.
            self.wc.assign(self.W_NOMINAL - lf.out)
            strobe = nco.step(self.wc)
            self.strobe_d.assign(1.0 if strobe else 0.0)
            self.strobe_d2.assign(self.strobe_d + 0.0)

            # Interpolate every sample with the held fractional interval.
            yi = ip.step(mf_out, nco.mu)

            # One cycle after the underflow the freshly committed mu is in
            # effect and the interpolant lands on the symbol peak: take the
            # decision there.
            if self.strobe_d.fx != 0.0:
                self.y.assign(binary_slicer(yi))
                self.decisions.append(self.y.fx)
                self.mu_trace.append(nco.mu.fx)

            # One further cycle later the interpolant sits on the symbol
            # transition.  Feeding (transition_n - transition_{n-1}) * peak_n
            # to the loop filter realizes the Gardner-class detector whose
            # stable zero keeps the decision instants on the peaks.
            if self.strobe_d2.fx != 0.0:
                ted.step(yi, self.yi_prev)
                lf.step(ted.err)

            self.yi_prev.assign(yi + 0.0)
            ctx.tick()

    # -- convenience -------------------------------------------------------------

    def signal_count(self, ctx):
        """Number of signals subject to refinement (paper: 61)."""
        return len(ctx.signals())


def aligned_symbol_errors(tx_symbols, decisions, skip=200, max_lag=16):
    """Best-alignment symbol error count between sent and decided symbols.

    The loop has an unknown bulk delay; all lags up to ``max_lag`` are
    tried and the best (fewest errors, as a rate) is returned as
    ``(error_rate, lag)``.
    """
    rx = np.sign(np.asarray(decisions, dtype=float)[skip:])
    if len(rx) == 0:
        raise ValueError("no decisions to align")
    best = (1.0, None)
    tx = np.asarray(tx_symbols, dtype=float)
    for lag in range(-max_lag, max_lag + 1):
        start = lag + skip
        if start < 0:
            continue
        ref = np.sign(tx[start:start + len(rx)])
        n = min(len(ref), len(rx))
        if n < 16:
            continue
        rate = float(np.mean(ref[:n] != rx[:n]))
        if rate < best[0]:
            best = (rate, lag)
    return best
