"""PAM sources and pulse-shaped waveform synthesis.

``shaped_pam`` synthesizes the received waveform of a PAM transmission
sampled by a receiver clock with a *fractional timing offset* and a
*clock frequency offset* — the stimulus the paper's timing recovery loop
(Figure 5) has to lock onto.  The waveform is evaluated directly from
the continuous-time RRC pulse, so no ideal-rate intermediate signal is
needed.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.rrc import raised_cosine_pulse
from repro.dsp.slicer import pam_levels

__all__ = ["pam_symbols", "shaped_pam", "ShapedPamStream"]


def pam_symbols(n, m=2, seed=0):
    """``n`` random M-PAM symbols (uniform over the constellation)."""
    rng = np.random.default_rng(seed)
    levels = np.asarray(pam_levels(m))
    return rng.choice(levels, size=n)


def shaped_pam(n_samples, sps=2.0, m=2, rolloff=0.5, span=8,
               timing_offset=0.0, clock_ppm=0.0, noise_std=0.0, seed=0,
               pulse=None):
    """Synthesize receiver samples of a pulse-shaped PAM signal.

    Parameters
    ----------
    n_samples:
        Number of receiver samples to produce.
    sps:
        Nominal receiver samples per symbol (the timing loop's design
        assumption).
    timing_offset:
        Static fractional delay of the receiver clock, in symbol periods.
    clock_ppm:
        Receiver clock frequency error in parts per million (the sample
        period becomes ``(1 + ppm*1e-6) / sps`` symbol periods).
    pulse:
        Continuous pulse ``g(t)`` (symbol periods); defaults to the
        raised-cosine (transmit RRC + matched RRC already applied), which
        keeps the synthesized waveform ISI-free at perfect timing.

    Returns
    -------
    (samples, symbols): receiver samples and the underlying symbols.
    """
    if pulse is None:
        pulse = lambda t: raised_cosine_pulse(t, rolloff)
    rng = np.random.default_rng(seed)
    step = (1.0 + clock_ppm * 1e-6) / float(sps)
    t = timing_offset + step * np.arange(n_samples)

    n_symbols = int(np.ceil(t[-1])) + span + 2
    levels = np.asarray(pam_levels(m))
    symbols = rng.choice(levels, size=n_symbols)

    samples = np.zeros(n_samples)
    base = np.floor(t).astype(int)
    frac = t - base
    for k in range(-span, span + 1):
        idx = base + k
        valid = (idx >= 0) & (idx < n_symbols)
        g = pulse(frac - k)
        samples[valid] += symbols[idx[valid]] * g[valid]
    if noise_std > 0.0:
        samples = samples + rng.normal(0.0, noise_std, size=n_samples)
    return samples, symbols


class ShapedPamStream:
    """Streaming, block-coherent version of :func:`shaped_pam`.

    Unlike calling :func:`shaped_pam` repeatedly, the symbol sequence and
    the receiver time base are continuous across ``take`` calls, so an
    arbitrarily long simulation sees one consistent waveform.  The symbol
    history stays available in :attr:`symbols` for alignment/BER checks.
    """

    def __init__(self, sps=2.0, m=2, rolloff=0.5, span=8,
                 timing_offset=0.0, clock_ppm=0.0, noise_std=0.0, seed=0,
                 pulse=None):
        self.pulse = (pulse if pulse is not None
                      else (lambda t: raised_cosine_pulse(t, rolloff)))
        self.span = int(span)
        self.noise_std = float(noise_std)
        self.step = (1.0 + clock_ppm * 1e-6) / float(sps)
        self.timing_offset = float(timing_offset)
        self._levels = np.asarray(pam_levels(m))
        self._rng = np.random.default_rng(seed)
        self.symbols = np.empty(0)
        self._next_sample = 0

    def _ensure_symbols(self, n_needed):
        if n_needed > len(self.symbols):
            extra = max(n_needed - len(self.symbols), 256)
            new = self._rng.choice(self._levels, size=extra)
            self.symbols = np.concatenate([self.symbols, new])

    def take(self, n):
        """Produce the next ``n`` receiver samples as a numpy array."""
        k = np.arange(self._next_sample, self._next_sample + n)
        self._next_sample += n
        t = self.timing_offset + self.step * k
        base = np.floor(t).astype(int)
        frac = t - base
        self._ensure_symbols(int(base.max(initial=0)) + self.span + 2)
        out = np.zeros(n)
        for j in range(-self.span, self.span + 1):
            idx = base + j
            valid = (idx >= 0) & (idx < len(self.symbols))
            g = self.pulse(frac - j)
            out[valid] += self.symbols[idx[valid]] * g[valid]
        if self.noise_std > 0.0:
            out += self._rng.normal(0.0, self.noise_std, size=n)
        return out

    def __iter__(self):
        while True:
            yield from self.take(1024).tolist()
