"""Gardner timing error detector (refinable block).

Operates on interpolants at two samples per symbol: with ``now`` the
on-time interpolant of the current symbol, ``prev`` the previous
symbol's on-time interpolant and ``mid`` the interpolant halfway
between, the Gardner error is::

    e = (now - prev) * mid

which is decision-free (works before the slicer is reliable) and has a
stable zero at the pulse peak for binary PAM.
"""

from __future__ import annotations

from repro.signal import Reg, Sig

__all__ = ["GardnerTed"]


class GardnerTed:
    """Signals: ``ted.prev`` (previous on-time sample, register),
    ``ted.mid`` (midpoint sample) and ``ted.err`` (detector output)."""

    def __init__(self, prefix, ctx=None):
        self.prefix = prefix
        self.prev = Reg("%s.prev" % prefix, ctx=ctx)
        self.mid = Sig("%s.mid" % prefix, ctx=ctx)
        self.err = Sig("%s.err" % prefix, ctx=ctx)

    def step(self, now, midpoint):
        """Evaluate at a symbol strobe; returns the error signal."""
        self.mid.assign(midpoint)
        self.err.assign((now - self.prev) * self.mid)
        self.prev.assign(now + 0.0)
        return self.err

    def signals(self):
        return [self.prev, self.mid, self.err]
