"""Baseband channel models: FIR multipath plus AWGN."""

from __future__ import annotations

import numpy as np

__all__ = ["Channel", "awgn"]


def awgn(samples, noise_std, seed=0):
    """Add white Gaussian noise of the given standard deviation."""
    if noise_std < 0:
        raise ValueError("noise_std must be >= 0")
    rng = np.random.default_rng(seed)
    samples = np.asarray(samples, dtype=float)
    if noise_std == 0.0:
        return samples.copy()
    return samples + rng.normal(0.0, noise_std, size=samples.shape)


class Channel:
    """Streaming FIR channel with AWGN, usable sample by sample.

    The FIR state is kept across calls so the channel can feed an
    arbitrarily long simulation in chunks.
    """

    def __init__(self, taps=(1.0,), noise_std=0.0, seed=0):
        self.taps = np.asarray(taps, dtype=float)
        if self.taps.ndim != 1 or len(self.taps) == 0:
            raise ValueError("taps must be a non-empty 1-D sequence")
        self.noise_std = float(noise_std)
        self._state = np.zeros(len(self.taps) - 1)
        self._rng = np.random.default_rng(seed)

    def process(self, samples):
        """Filter a block of samples (keeps state between blocks)."""
        x = np.asarray(samples, dtype=float)
        full = np.convolve(x, self.taps)
        out = full[:len(x)].copy()
        n_state = len(self._state)
        if n_state:
            k = min(n_state, len(out))
            out[:k] += self._state[:k]
            rest = self._state[k:]
            tail = full[len(x):]
            new_state = np.zeros(n_state)
            new_state[:len(tail)] += tail
            new_state[:len(rest)] += rest
            self._state = new_state
        if self.noise_std > 0.0:
            out += self._rng.normal(0.0, self.noise_std, size=out.shape)
        return out

    def step(self, sample):
        """Filter one sample."""
        return float(self.process([sample])[0])

    def reset(self):
        self._state = np.zeros(len(self.taps) - 1)
        return self
