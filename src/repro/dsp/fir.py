"""Constant-coefficient FIR filter block.

Two implementations are provided:

* :class:`FirFilter` — a refinable block built from ``Sig``/``Reg``
  objects (delay line in registers, multiply-accumulate chain as named
  partial sums, like the paper's ``v[i]`` chain), usable inside any
  :class:`~repro.refine.flow.Design`.
* :func:`fir_reference` — a plain numpy reference for tests/benches.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DesignError
from repro.signal import RegArray, Sig, SigArray

__all__ = ["FirFilter", "fir_reference"]


class FirFilter:
    """Direct-form FIR with monitored internal signals.

    Signals created (for ``prefix='f'``, N taps): ``f.c[i]`` coefficient
    holders, ``f.d[i]`` delay line registers, ``f.v[i]`` partial sums
    (``f.v[N]`` is the output).
    """

    def __init__(self, prefix, coefficients, ctx=None):
        if len(coefficients) == 0:
            raise DesignError("FIR needs at least one coefficient")
        self.prefix = prefix
        self.coefficients = tuple(float(c) for c in coefficients)
        n = len(self.coefficients)
        self.n_taps = n
        self.c = SigArray("%s.c" % prefix, n, ctx=ctx)
        self.d = RegArray("%s.d" % prefix, n, ctx=ctx)
        self.v = SigArray("%s.v" % prefix, n + 1, ctx=ctx)
        for i in range(n):
            self.c[i] = self.coefficients[i]

    @property
    def out(self):
        """Output signal (the last partial sum)."""
        return self.v[self.n_taps]

    def step(self, x):
        """Shift in one sample, produce one output (call every cycle)."""
        n = self.n_taps
        self.d[0] = x
        for i in range(n - 1, 0, -1):
            self.d[i] = self.d[i - 1]
        self.v[0] = 0.0
        for i in range(1, n + 1):
            self.v[i] = self.v[i - 1] + self.d[i - 1] * self.c[i - 1]
        return self.out

    def signals(self):
        return (list(self.c.signals()) + list(self.d.signals())
                + list(self.v.signals()))


def fir_reference(coefficients, samples, zi=None):
    """Reference FIR: one-cycle input delay, matching :class:`FirFilter`.

    :class:`FirFilter` registers the input before the first tap, so its
    output at step ``k`` is ``sum(c[i] * x[k-1-i])``.
    """
    h = np.asarray(coefficients, dtype=float)
    x = np.asarray(samples, dtype=float)
    delayed = np.concatenate(([0.0], x[:-1])) if len(x) else x
    full = np.convolve(delayed, h)
    return full[:len(x)]
