"""Second-order IIR section (biquad) and limit-cycle analysis.

Paper Section 4.2: "Quantizing feedback signal paths still requires the
final verification of the system stability and precision.  This is due
to effects like limit cycles."  A recursive filter whose feedback values
are rounded can sustain a periodic nonzero output with zero input — the
classic granular limit cycle — which no error-statistics rule predicts.
This module provides the substrate to demonstrate it: a refinable
direct-form-II biquad, RBJ-cookbook coefficient design, and a zero-input
limit-cycle detector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.refine.flow import Design
from repro.signal import Reg, Sig

__all__ = ["Biquad", "BiquadDesign", "lowpass_coefficients",
           "LimitCycle", "detect_limit_cycle", "zero_input_response"]


def lowpass_coefficients(fc, q=0.7071):
    """RBJ cookbook low-pass biquad, normalized (a0 = 1).

    ``fc`` is the cutoff as a fraction of the sample rate (0 < fc < 0.5).
    Returns ``(b0, b1, b2, a1, a2)`` for
    ``y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]``.
    """
    if not 0.0 < fc < 0.5:
        raise ValueError("fc must be in (0, 0.5), got %r" % fc)
    if q <= 0.0:
        raise ValueError("q must be positive")
    w0 = 2.0 * math.pi * fc
    alpha = math.sin(w0) / (2.0 * q)
    cos_w0 = math.cos(w0)
    a0 = 1.0 + alpha
    b0 = (1.0 - cos_w0) / 2.0 / a0
    b1 = (1.0 - cos_w0) / a0
    b2 = b0
    a1 = (-2.0 * cos_w0) / a0
    a2 = (1.0 - alpha) / a0
    return (b0, b1, b2, a1, a2)


class Biquad:
    """Direct-form-II biquad built from monitored signals.

    Signals (for ``prefix='bq'``): the recursive node ``bq.w``, state
    registers ``bq.w1``/``bq.w2`` and the output ``bq.y``.  The state
    registers are the quantization points of the feedback path — the
    ones that cause limit cycles when rounded coarsely.
    """

    def __init__(self, prefix, coefficients, ctx=None):
        b0, b1, b2, a1, a2 = (float(c) for c in coefficients)
        self.prefix = prefix
        self.b0, self.b1, self.b2 = b0, b1, b2
        self.a1, self.a2 = a1, a2
        self.w = Sig("%s.w" % prefix, ctx=ctx)
        self.w1 = Reg("%s.w1" % prefix, ctx=ctx)
        self.w2 = Reg("%s.w2" % prefix, ctx=ctx)
        self.y = Sig("%s.y" % prefix, ctx=ctx)

    def step(self, x):
        """One sample through the section; returns the output signal."""
        self.w.assign(x - self.a1 * self.w1 - self.a2 * self.w2)
        self.y.assign(self.b0 * self.w + self.b1 * self.w1
                      + self.b2 * self.w2)
        self.w2.assign(self.w1 + 0.0)
        self.w1.assign(self.w + 0.0)
        return self.y

    def signals(self):
        return [self.w, self.w1, self.w2, self.y]


class BiquadDesign(Design):
    """A biquad as a refinable design (white-noise stimulus)."""

    name = "biquad"
    inputs = ("x",)
    output = "bq.y"

    def __init__(self, fc=0.1, q=0.7071, seed=33, amplitude=1.0):
        self.coefficients = lowpass_coefficients(fc, q)
        self.seed = seed
        self.amplitude = amplitude

    def build(self, ctx):
        self.x = Sig("x")
        self.bq = Biquad("bq", self.coefficients)
        rng = np.random.default_rng(self.seed)
        self._stim = iter((self.amplitude
                           * rng.uniform(-1, 1, size=400000)).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.bq.step(self.x)
            ctx.tick()


@dataclass(frozen=True)
class LimitCycle:
    """A sustained zero-input oscillation."""

    period: object       # int, or None when aperiodic
    amplitude: float

    def __str__(self):
        p = "aperiodic" if self.period is None else "period %d" % self.period
        return "limit cycle (%s, amplitude %g)" % (p, self.amplitude)


def zero_input_response(biquad, ctx, n_excite=32, n_observe=512,
                        excitation=0.9):
    """Kick the section with one impulse, then feed zeros.

    Returns the zero-input samples of the *recursive node* ``w`` — the
    feedback state where granular limit cycles live (the tiny
    feed-forward gains of a narrow-band section can hide them at the
    output).
    """
    out = []
    biquad.step(excitation)
    ctx.tick()
    for _ in range(n_excite - 1):
        biquad.step(0.0)
        ctx.tick()
    for _ in range(n_observe):
        biquad.step(0.0)
        out.append(biquad.w.fx)
        ctx.tick()
    return out


def detect_limit_cycle(samples, settle_fraction=0.5, max_period=64,
                       tol=0.0):
    """Detect a sustained oscillation in a zero-input response.

    Looks at the tail (after ``settle_fraction`` of the samples): if it
    is identically zero (within ``tol``) the filter died out — returns
    ``None``.  Otherwise the smallest period that repeats exactly across
    the tail is reported (``None`` period when no periodicity is found).
    """
    tail = list(samples[int(len(samples) * settle_fraction):])
    if not tail:
        raise ValueError("not enough samples to analyze")
    amplitude = max(abs(v) for v in tail)
    if amplitude <= tol:
        return None
    # A still-decaying (stable float) response is not a limit cycle:
    # compare the envelope of the two halves of the tail.
    half = len(tail) // 2
    if half >= 8:
        first = max(abs(v) for v in tail[:half])
        second = max(abs(v) for v in tail[half:])
        if second < 0.7 * first:
            return None
    for period in range(1, min(max_period, len(tail) // 2) + 1):
        if all(abs(tail[i] - tail[i + period]) <= tol
               for i in range(len(tail) - period)):
            return LimitCycle(period, amplitude)
    return LimitCycle(None, amplitude)
