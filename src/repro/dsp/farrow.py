"""Cubic Lagrange Farrow interpolator (refinable block).

The interpolator evaluates the cubic Lagrange polynomial through the
last four input samples at fractional position ``mu``.  With the delay
line ``d[0]`` (newest) .. ``d[3]`` (oldest) holding samples at relative
times ``+2, +1, 0, -1``, the output is the waveform value at time
``mu`` in ``[0, 1)`` — i.e. between ``d[2]`` and ``d[1]``::

    y(mu) = ((f3*mu + f2)*mu + f1)*mu + f0

where the basis-filter outputs ``f0..f3`` are fixed-coefficient FIR
combinations of the delay line (the classic Farrow structure: only the
``mu`` multipliers change at run time).
"""

from __future__ import annotations

from repro.signal import RegArray, Sig, SigArray

__all__ = ["FarrowInterpolator", "FARROW_BASIS"]

#: FARROW_BASIS[j][i] is the weight of delay tap ``d[i]`` in basis filter
#: ``f_j`` (coefficient of mu**j).  Cubic Lagrange through nodes at
#: relative positions (2, 1, 0, -1).
FARROW_BASIS = (
    (0.0, 0.0, 1.0, 0.0),                                  # f0 = d2
    (-1.0 / 6.0, 1.0, -0.5, -1.0 / 3.0),                   # f1
    (0.0, 0.5, -1.0, 0.5),                                 # f2
    (1.0 / 6.0, -0.5, 0.5, -1.0 / 6.0),                    # f3
)


class FarrowInterpolator:
    """Four-tap cubic Farrow structure with monitored internal signals.

    Signals (for ``prefix='ip'``): delay registers ``ip.d[0..3]``, basis
    partial sums ``ip.p0[0..3]`` .. ``ip.p3[0..3]``, basis outputs
    ``ip.f[0..3]``, Horner intermediates ``ip.h2``/``ip.h1`` and the
    interpolant ``ip.y``.
    """

    def __init__(self, prefix, ctx=None):
        self.prefix = prefix
        self.d = RegArray("%s.d" % prefix, 4, ctx=ctx)
        self.p = [SigArray("%s.p%d" % (prefix, j), 4, ctx=ctx)
                  for j in range(4)]
        self.f = SigArray("%s.f" % prefix, 4, ctx=ctx)
        self.h2 = Sig("%s.h2" % prefix, ctx=ctx)
        self.h1 = Sig("%s.h1" % prefix, ctx=ctx)
        self.y = Sig("%s.y" % prefix, ctx=ctx)

    def step(self, x, mu):
        """Shift ``x`` into the delay line; interpolate at ``mu``.

        The delay line commits at the next clock edge, so the polynomial
        uses the samples shifted in during *previous* cycles (hardware
        pipeline behaviour).  Returns the interpolant signal.
        """
        d = self.d
        d[0] = x
        for i in range(3, 0, -1):
            d[i] = d[i - 1]

        for j in range(4):
            basis = FARROW_BASIS[j]
            pj = self.p[j]
            pj[0] = d[0] * basis[0]
            for i in range(1, 4):
                pj[i] = pj[i - 1] + d[i] * basis[i]
            self.f[j] = pj[3]

        self.h2.assign(self.f[3] * mu + self.f[2])
        self.h1.assign(self.h2 * mu + self.f[1])
        self.y.assign(self.h1 * mu + self.f[0])
        return self.y

    def signals(self):
        out = list(self.d.signals())
        for pj in self.p:
            out.extend(pj.signals())
        out.extend(self.f.signals())
        out.extend([self.h2, self.h1, self.y])
        return out
