"""Interpolation-control NCO (numerically controlled oscillator).

The phase register ``eta`` (the paper's "D signal inside the NCO")
decrements by the control word each sample and wraps around 1 on
underflow; the underflow is the symbol strobe and the pre-wrap phase
yields the fractional interpolation interval ``mu = eta / w``.

This modulo-1 accumulator is exactly the kind of sensitive feedback
signal whose coupled float/fixed error statistics diverge (the
difference error performs a random walk), requiring the paper's
``error()`` annotation during LSB refinement.
"""

from __future__ import annotations

from repro.signal import Reg, Sig, select
from repro.signal.ops import lt

__all__ = ["Nco", "WrappedNco"]


class Nco:
    """Modulo-1 down-counting NCO with strobe and ``mu`` outputs.

    Signals (for ``prefix='nco'``): phase register ``nco.eta``, the
    decremented phase ``nco.eta_next``, and the held fractional interval
    ``nco.mu``.
    """

    def __init__(self, prefix, init_phase=0.9, ctx=None):
        self.prefix = prefix
        self.eta = Reg("%s.eta" % prefix, ctx=ctx, init=init_phase)
        self.eta_next = Sig("%s.eta_next" % prefix, ctx=ctx)
        self.mu = Reg("%s.mu" % prefix, ctx=ctx)
        self.strobe = False

    def step(self, w):
        """Advance one sample with control word ``w``; returns the strobe.

        On underflow (``eta - w < 0``) the phase wraps around 1, the
        strobe fires, and ``mu`` captures ``eta / w`` — the fraction of a
        sample period after the previous sample at which the symbol
        instant occurred.  The wrap decision runs on the fixed-point
        value, so both coupled simulations always wrap together.
        """
        self.eta_next.assign(self.eta - w)
        strobe_expr = lt(self.eta_next, 0.0)
        self.strobe = bool(strobe_expr)
        if self.strobe:
            self.mu.assign(self.eta / w)
        self.eta.assign(select(strobe_expr, self.eta_next + 1.0,
                               self.eta_next + 0.0))
        return self.strobe

    def signals(self):
        return [self.eta, self.eta_next, self.mu]


class WrappedNco:
    """NCO whose phase register is a *wrap-around typed* accumulator.

    This is how the phase lives in hardware: an unsigned modulo-1 word
    whose MSB overflow realizes the wrap for free, declared up front as a
    partial type definition (e.g. ``<12,12,us,wrap>``).  The consequence
    for the coupled simulation is exactly the paper's Section 6.1
    finding: the fixed-point phase wraps through the type while the
    floating-point reference keeps running off linearly, so the
    difference error of the phase register is unbounded and its
    statistics are meaningless — until the designer overrules them with
    ``eta.error(q)``.
    """

    def __init__(self, prefix, phase_dtype, init_phase=0.9, ctx=None):
        if not (phase_dtype.vtype == "us" and phase_dtype.msbspec == "wrap"
                and phase_dtype.n == phase_dtype.f):
            raise ValueError("phase dtype must be an unsigned modulo-1 "
                             "wrap type <f,f,us,wrap>, got %s"
                             % phase_dtype.spec())
        self.prefix = prefix
        self.eta = Reg("%s.eta" % prefix, dtype=phase_dtype, ctx=ctx,
                       init=init_phase)
        self.eta_next = Sig("%s.eta_next" % prefix, ctx=ctx)
        self.mu = Reg("%s.mu" % prefix, ctx=ctx)
        self.strobe = False

    def step(self, w):
        """Advance one sample; the wrap happens in the type, not in code."""
        self.eta_next.assign(self.eta - w)
        self.strobe = bool(lt(self.eta_next, 0.0))
        if self.strobe:
            self.mu.assign(self.eta / w)
        # The unsigned wrap type folds a negative phase back into [0, 1).
        self.eta.assign(self.eta - w)
        return self.strobe

    def signals(self):
        return [self.eta, self.eta_next, self.mu]
