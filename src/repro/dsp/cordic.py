"""CORDIC rotator/vectoring engine (shift-and-add substrate).

CORDIC is the canonical fixed-point block built *entirely* from the
operations the refinement environment models cheaply: shifts, adds and
sign decisions.  It exercises the parts of the methodology the FIR-style
examples do not: per-iteration shift operators (``>> i``), deep chains
of conditionally negated adds (``select`` on a sign test at every
stage), and a precision budget that the LSB rule must spread across the
iteration chain.

Rotation mode: given ``(x, y)`` and an angle ``z`` (radians), rotate the
vector by ``z``.  The result is scaled by the CORDIC gain ``K ~ 1.6468``
unless compensated.
"""

from __future__ import annotations

import math

from repro.refine.flow import Design
from repro.signal import Sig, SigArray, select
from repro.signal.ops import ge

import numpy as np

__all__ = ["cordic_gain", "CordicRotator", "CordicDesign",
           "rotate_reference"]


def cordic_gain(n_stages):
    """Product of the per-stage magnitudes: K = prod sqrt(1 + 2^-2i)."""
    gain = 1.0
    for i in range(n_stages):
        gain *= math.sqrt(1.0 + 2.0 ** (-2 * i))
    return gain


def rotate_reference(x, y, angle):
    """Ideal rotation (for accuracy checks)."""
    c, s = math.cos(angle), math.sin(angle)
    return x * c - y * s, x * s + y * c


class CordicRotator:
    """Unrolled rotation-mode CORDIC with monitored stage signals.

    Signals (for ``prefix='cr'``): per-stage ``cr.x[i]``, ``cr.y[i]``,
    ``cr.z[i]`` for ``i`` in ``0..n`` (stage 0 holds the inputs; stage
    ``n`` the outputs).  The angle table is baked in as constants.
    """

    def __init__(self, prefix, n_stages=12, compensate_gain=True,
                 ctx=None):
        if n_stages < 1:
            raise ValueError("need at least one CORDIC stage")
        self.prefix = prefix
        self.n_stages = int(n_stages)
        self.compensate_gain = compensate_gain
        self.angles = [math.atan(2.0 ** -i) for i in range(self.n_stages)]
        self.inv_gain = 1.0 / cordic_gain(self.n_stages)
        n = self.n_stages
        self.x = SigArray("%s.x" % prefix, n + 1, ctx=ctx)
        self.y = SigArray("%s.y" % prefix, n + 1, ctx=ctx)
        self.z = SigArray("%s.z" % prefix, n + 1, ctx=ctx)
        self.xo = Sig("%s.xo" % prefix, ctx=ctx)
        self.yo = Sig("%s.yo" % prefix, ctx=ctx)

    def step(self, x_in, y_in, angle):
        """Rotate ``(x_in, y_in)`` by ``angle``; returns ``(xo, yo)``.

        ``angle`` must lie within the CORDIC convergence range
        (about +/- 1.74 rad); the caller handles quadrant folding.
        """
        self.x[0] = x_in
        self.y[0] = y_in
        self.z[0] = angle
        for i in range(self.n_stages):
            xi, yi, zi = self.x[i], self.y[i], self.z[i]
            positive = ge(zi, 0.0)
            xs = xi >> i
            ys = yi >> i
            self.x[i + 1] = select(positive, xi - ys, xi + ys)
            self.y[i + 1] = select(positive, yi + xs, yi - xs)
            self.z[i + 1] = select(positive, zi - self.angles[i],
                                   zi + self.angles[i])
        last = self.n_stages
        if self.compensate_gain:
            self.xo.assign(self.x[last] * self.inv_gain)
            self.yo.assign(self.y[last] * self.inv_gain)
        else:
            self.xo.assign(self.x[last] + 0.0)
            self.yo.assign(self.y[last] + 0.0)
        return self.xo, self.yo

    def signals(self):
        return (list(self.x.signals()) + list(self.y.signals())
                + list(self.z.signals()) + [self.xo, self.yo])


class CordicDesign(Design):
    """Refinable design: rotate random unit-disc vectors by random angles."""

    name = "cordic"
    inputs = ("xi", "yi", "zi")
    output = "cr.xo"

    def __init__(self, n_stages=12, seed=55):
        self.n_stages = int(n_stages)
        self.seed = seed

    def build(self, ctx):
        self.xi = Sig("xi")
        self.yi = Sig("yi")
        self.zi = Sig("zi")
        self.cordic = CordicRotator("cr", self.n_stages)
        rng = np.random.default_rng(self.seed)
        radius = rng.uniform(0.1, 0.95, size=100000)
        phase = rng.uniform(-math.pi, math.pi, size=100000)
        angle = rng.uniform(-1.5, 1.5, size=100000)
        self._stim = iter(zip((radius * np.cos(phase)).tolist(),
                              (radius * np.sin(phase)).tolist(),
                              angle.tolist()))

    def run(self, ctx, n):
        for _ in range(n):
            xv, yv, zv = next(self._stim)
            self.xi.assign(xv)
            self.yi.assign(yv)
            self.zi.assign(zv)
            self.cordic.step(self.xi, self.yi, self.zi)
            ctx.tick()
