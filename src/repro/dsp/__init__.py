"""DSP block library: the paper's example designs and their substrates."""

from repro.dsp.biquad import (Biquad, BiquadDesign, LimitCycle,
                              detect_limit_cycle, lowpass_coefficients,
                              zero_input_response)
from repro.dsp.adaptive_fir import AdaptiveLmsDesign
from repro.dsp.chan import Channel, awgn
from repro.dsp.cordic import (CordicDesign, CordicRotator, cordic_gain,
                              rotate_reference)
from repro.dsp.farrow import FARROW_BASIS, FarrowInterpolator
from repro.dsp.fir import FirFilter, fir_reference
from repro.dsp.lms import (
    PAPER_CHANNEL,
    PAPER_COEFFICIENTS,
    LmsEqualizerDesign,
    pam_channel_stimulus,
)
from repro.dsp.loopfilter import PiLoopFilter
from repro.dsp.metrics import ber, evm_percent, mse, snr_db, sqnr_db, sqnr_from_stats
from repro.dsp.nco import Nco, WrappedNco
from repro.dsp.pam import ShapedPamStream, pam_symbols, shaped_pam
from repro.dsp.rrc import raised_cosine_pulse, rrc_pulse, rrc_taps
from repro.dsp.slicer import binary_slicer, pam_levels, pam_slicer
from repro.dsp.ted import GardnerTed
from repro.dsp.timing_recovery import TimingRecoveryDesign, aligned_symbol_errors

__all__ = [
    "AdaptiveLmsDesign",
    "Biquad",
    "BiquadDesign",
    "LimitCycle",
    "detect_limit_cycle",
    "lowpass_coefficients",
    "zero_input_response",
    "CordicRotator",
    "CordicDesign",
    "cordic_gain",
    "rotate_reference",
    "FirFilter",
    "fir_reference",
    "LmsEqualizerDesign",
    "pam_channel_stimulus",
    "PAPER_COEFFICIENTS",
    "PAPER_CHANNEL",
    "FarrowInterpolator",
    "FARROW_BASIS",
    "Nco",
    "WrappedNco",
    "GardnerTed",
    "PiLoopFilter",
    "TimingRecoveryDesign",
    "aligned_symbol_errors",
    "Channel",
    "awgn",
    "ShapedPamStream",
    "pam_symbols",
    "shaped_pam",
    "rrc_pulse",
    "rrc_taps",
    "raised_cosine_pulse",
    "binary_slicer",
    "pam_slicer",
    "pam_levels",
    "mse",
    "sqnr_db",
    "snr_db",
    "sqnr_from_stats",
    "ber",
    "evm_percent",
]
