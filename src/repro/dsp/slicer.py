"""Decision devices (slicers) for M-ary PAM."""

from __future__ import annotations

import numpy as np

from repro.core.errors import DesignError
from repro.signal import as_expr, select
from repro.signal.ops import gt

__all__ = ["binary_slicer", "pam_slicer", "pam_levels"]


def binary_slicer(value):
    """The paper's slicer: ``y = w > 0 ? 1 : -1`` as an expression."""
    return select(gt(value, 0.0), 1.0, -1.0)


def pam_levels(m):
    """Symbol levels of M-PAM, unit outermost level: M=2 -> (-1, 1)."""
    if m < 2 or m % 2:
        raise DesignError("M-PAM needs an even M >= 2, got %r" % m)
    raw = np.arange(-(m - 1), m, 2, dtype=float)
    return tuple(raw / (m - 1))


def pam_slicer(value, m=2):
    """Nearest-level M-PAM decision as a nested ``select`` expression.

    Thresholds sit midway between adjacent levels; comparisons run on the
    fixed-point value (uniform control for the dual simulation).
    """
    levels = pam_levels(m)
    expr = as_expr(value)
    result = levels[0]
    for lo, hi in zip(levels, levels[1:]):
        threshold = 0.5 * (lo + hi)
        result = select(gt(expr, threshold), hi, result)
    return as_expr(result)
