"""Signal-quality metrics: SQNR, MSE, BER, EVM.

All metrics accept plain sequences or numpy arrays.  ``sqnr_db`` is the
measure the paper reports for the LSB refinement result (39.8 dB before,
39.1 dB after on the LMS example).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["mse", "sqnr_db", "snr_db", "ber", "evm_percent",
           "sqnr_from_stats"]


def mse(reference, test):
    """Mean squared error between two equal-length sequences."""
    ref = np.asarray(reference, dtype=float)
    tst = np.asarray(test, dtype=float)
    if ref.shape != tst.shape:
        raise ValueError("shape mismatch: %s vs %s" % (ref.shape, tst.shape))
    if ref.size == 0:
        raise ValueError("empty input")
    return float(np.mean((ref - tst) ** 2))


def sqnr_db(reference, test):
    """Signal-to-quantization-noise ratio in dB.

    ``reference`` is the ideal (floating-point) signal, ``test`` the
    quantized one; noise is their difference.
    """
    ref = np.asarray(reference, dtype=float)
    noise_power = mse(reference, test)
    signal_power = float(np.mean(ref ** 2))
    if noise_power == 0.0:
        return math.inf
    if signal_power == 0.0:
        return -math.inf
    return 10.0 * math.log10(signal_power / noise_power)


def snr_db(signal_power, noise_power):
    """SNR in dB from raw powers."""
    if noise_power <= 0.0:
        return math.inf
    if signal_power <= 0.0:
        return -math.inf
    return 10.0 * math.log10(signal_power / noise_power)


def sqnr_from_stats(signal_rms, noise_rms):
    """SQNR in dB from rms values (as gathered by the error monitors)."""
    if noise_rms == 0.0:
        return math.inf
    if signal_rms == 0.0:
        return -math.inf
    return 20.0 * math.log10(signal_rms / noise_rms)


def ber(transmitted, decided, skip=0):
    """Bit error rate between +/-1 symbol sequences.

    ``skip`` discards the initial samples (equalizer/loop convergence).
    Sequences are truncated to the shorter length after alignment.
    """
    tx = np.sign(np.asarray(transmitted, dtype=float)[skip:])
    rx = np.sign(np.asarray(decided, dtype=float)[skip:])
    n = min(len(tx), len(rx))
    if n == 0:
        raise ValueError("no symbols to compare")
    return float(np.mean(tx[:n] != rx[:n]))


def evm_percent(reference, test):
    """Error vector magnitude in percent (rms error / rms reference)."""
    ref = np.asarray(reference, dtype=float)
    err = np.asarray(test, dtype=float) - ref
    ref_rms = float(np.sqrt(np.mean(ref ** 2)))
    if ref_rms == 0.0:
        raise ValueError("reference has zero power")
    return 100.0 * float(np.sqrt(np.mean(err ** 2))) / ref_rms
