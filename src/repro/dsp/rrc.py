"""Root-raised-cosine pulse shaping.

Continuous-time evaluation (needed to synthesize samples at arbitrary,
clock-offset instants for the timing recovery experiments) plus discrete
tap generation for FIR matched filters.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rrc_pulse", "rrc_taps", "raised_cosine_pulse"]


def rrc_pulse(t, rolloff=0.5):
    """Root-raised-cosine pulse h(t), unit symbol period, h(0) peak.

    Handles the removable singularities at ``t = 0`` and
    ``t = +/- 1/(4*rolloff)`` analytically.  Vectorized over ``t``.
    """
    beta = float(rolloff)
    if not 0.0 < beta <= 1.0:
        raise ValueError("rolloff must be in (0, 1], got %r" % rolloff)
    t = np.asarray(t, dtype=float)
    out = np.empty_like(t)

    tiny = 1e-9
    at_zero = np.abs(t) < tiny
    at_pole = np.abs(np.abs(t) - 1.0 / (4.0 * beta)) < tiny
    regular = ~(at_zero | at_pole)

    out[at_zero] = 1.0 + beta * (4.0 / np.pi - 1.0)

    # L'Hopital value at t = 1/(4 beta).
    out[at_pole] = (beta / np.sqrt(2.0)) * (
        (1.0 + 2.0 / np.pi) * np.sin(np.pi / (4.0 * beta))
        + (1.0 - 2.0 / np.pi) * np.cos(np.pi / (4.0 * beta)))

    tr = t[regular]
    num = (np.sin(np.pi * tr * (1.0 - beta))
           + 4.0 * beta * tr * np.cos(np.pi * tr * (1.0 + beta)))
    den = np.pi * tr * (1.0 - (4.0 * beta * tr) ** 2)
    out[regular] = num / den
    return out if out.shape else float(out)


def raised_cosine_pulse(t, rolloff=0.5):
    """Raised-cosine pulse (the RRC autocorrelation): Nyquist, zero ISI."""
    beta = float(rolloff)
    if not 0.0 < beta <= 1.0:
        raise ValueError("rolloff must be in (0, 1], got %r" % rolloff)
    t = np.asarray(t, dtype=float)
    out = np.sinc(t)
    denom = 1.0 - (2.0 * beta * t) ** 2
    pole = np.abs(denom) < 1e-9
    cos_term = np.where(pole, 1.0, np.cos(np.pi * beta * t))
    denom = np.where(pole, 1.0, denom)
    out = out * cos_term / denom
    pole_value = (np.pi / 4.0) * np.sinc(1.0 / (2.0 * beta))
    out = np.where(pole, pole_value, out)
    return out if out.shape else float(out)


def rrc_taps(sps=2, span=8, rolloff=0.5, normalize=True):
    """Discrete RRC taps: ``span`` symbols at ``sps`` samples/symbol.

    Returns an odd-length symmetric tap vector.  With ``normalize`` the
    taps are scaled to unit energy (matched-filter convention).
    """
    n = span * sps
    t = (np.arange(n + 1) - n / 2.0) / float(sps)
    h = rrc_pulse(t, rolloff)
    if normalize:
        h = h / np.sqrt(np.sum(h * h))
    return h
