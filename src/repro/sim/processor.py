"""Processor model: one behavioral/cycle-true component of a system.

A processor describes its behaviour as a Python generator — ``yield``
marks the end of a clock cycle, mirroring the paper's ``while (1)``
loops.  Register commits happen between cycles (the engine ticks the
design context after all processors advanced).

Two authoring styles are supported::

    class MyProc(Processor):
        def behavior(self):
            while True:
                x = self.inputs["x"].get()
                self.y.assign(x * 0.5)
                self.outputs["y"].put(self.y.fx)
                yield

or functional, via :class:`FuncProcessor`, wrapping a per-cycle callable.
"""

from __future__ import annotations

from repro.core.errors import SimulationError

__all__ = ["Processor", "FuncProcessor"]


class Processor:
    """Base class for all processors."""

    def __init__(self, name):
        self.name = str(name)
        self.inputs = {}
        self.outputs = {}
        self._gen = None
        self.done = False
        self.cycles = 0

    # -- wiring -------------------------------------------------------------

    def connect_input(self, port, channel):
        self.inputs[port] = channel
        return self

    def connect_output(self, port, channel):
        self.outputs[port] = channel
        return self

    # -- behaviour --------------------------------------------------------------

    def build(self, ctx):
        """Create this processor's signals in ``ctx`` (override)."""

    def behavior(self):
        """Generator implementing the processor behaviour (override)."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- engine interface -----------------------------------------------------

    def start(self):
        self._gen = self.behavior()
        self.done = False
        self.cycles = 0

    def step(self):
        """Advance one clock cycle; returns False once finished."""
        if self.done:
            return False
        if self._gen is None:
            raise SimulationError("processor %r was not started" % self.name)
        try:
            next(self._gen)
            self.cycles += 1
            return True
        except StopIteration:
            self.done = True
            return False

    def __repr__(self):
        return "%s(%r, cycles=%d%s)" % (type(self).__name__, self.name,
                                        self.cycles,
                                        ", done" if self.done else "")


class FuncProcessor(Processor):
    """Processor from a per-cycle callable.

    The callable receives the processor instance each cycle and may raise
    ``StopIteration`` (or return ``False``) to finish.
    """

    def __init__(self, name, fn, build_fn=None):
        super().__init__(name)
        self._fn = fn
        self._build_fn = build_fn

    def build(self, ctx):
        if self._build_fn is not None:
            self._build_fn(self, ctx)

    def behavior(self):
        while True:
            if self._fn(self) is False:
                return
            yield
