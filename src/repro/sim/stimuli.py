"""Stimulus sources and capture sinks for testbenches."""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.sim.processor import Processor

__all__ = ["Source", "Sink"]


class Source(Processor):
    """Feeds samples from an iterable into an output channel ``out``.

    Finishes (and lets the engine drain) once the iterable is exhausted.
    """

    def __init__(self, name, samples, port="out"):
        super().__init__(name)
        self._samples = samples
        self._port = port

    def behavior(self):
        out = self.outputs.get(self._port)
        if out is None:
            raise SimulationError("source %r has no %r channel connected"
                                  % (self.name, self._port))
        for v in self._samples:
            out.put(float(v))
            yield


class Sink(Processor):
    """Captures every sample arriving on input channel ``in``."""

    def __init__(self, name, port="in", limit=None):
        super().__init__(name)
        self._port = port
        self._limit = limit
        self.captured = []

    def behavior(self):
        chan = self.inputs.get(self._port)
        if chan is None:
            raise SimulationError("sink %r has no %r channel connected"
                                  % (self.name, self._port))
        while True:
            while not chan.empty:
                self.captured.append(chan.get())
                if self._limit is not None and len(self.captured) >= self._limit:
                    return
            yield
