"""Simulation engine: schedules processors and drives the clock.

Each engine cycle advances every processor's behaviour generator by one
``yield`` and then commits all registers of the design context (one
clock edge).  Processors communicate through :class:`Channel` FIFOs, so
the schedule order inside a cycle only affects FIFO latencies, never
correctness.

This module also owns the *execution-engine* selection shared by the
batch runner (:func:`repro.parallel.runner.run_simulations`) and the
layers above it (sensitivity analysis, wordlength optimization, fault
campaigns): ``"interpreted"`` walks every sample through the scalar
``Sig`` hot path, ``"compiled"`` lowers the design to batched NumPy
kernels (:mod:`repro.compile`) with automatic per-group fallback.  The
process default is ``"interpreted"`` unless the ``REPRO_ENGINE``
environment variable or :func:`set_default_engine` says otherwise; an
explicit ``engine=`` argument always wins.
"""

from __future__ import annotations

import os

from repro.core.errors import DeadlockError, SimulationError
from repro.obs import trace as obs_trace
from repro.sim.channel import Channel

__all__ = ["Engine", "ENGINES", "default_engine", "set_default_engine",
           "resolve_engine"]

#: Recognized execution engines for batch simulation.
ENGINES = ("interpreted", "compiled")

_DEFAULT_ENGINE = None   # None -> consult REPRO_ENGINE, else "interpreted"


def default_engine():
    """The engine used when callers pass ``engine=None``.

    Resolution order: :func:`set_default_engine` override, then the
    ``REPRO_ENGINE`` environment variable, then ``"interpreted"``.

    >>> default_engine()
    'interpreted'
    """
    if _DEFAULT_ENGINE is not None:
        return _DEFAULT_ENGINE
    env = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if env in ENGINES:
        return env
    return "interpreted"


def set_default_engine(engine):
    """Set (or with ``None``, clear) the process-wide engine default.

    Returns the previous override so callers can restore it.
    """
    global _DEFAULT_ENGINE
    if engine is not None and engine not in ENGINES:
        raise ValueError("engine must be one of %s, got %r"
                         % (", ".join(ENGINES), engine))
    prev = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return prev


def resolve_engine(engine):
    """Validate an explicit ``engine=`` argument, defaulting ``None``.

    >>> resolve_engine(None)
    'interpreted'
    >>> resolve_engine("compiled")
    'compiled'
    """
    if engine is None:
        return default_engine()
    if engine not in ENGINES:
        raise ValueError("engine must be one of %s, got %r"
                         % (", ".join(ENGINES), engine))
    return engine


class Engine:
    """Runs a set of processors against one design context.

    ``stall_limit`` arms the deadlock/stall detector: when that many
    consecutive cycles pass with zero channel activity while processors
    are still alive, :class:`~repro.core.errors.DeadlockError` is raised
    instead of spinning forever on a stalled FIFO.
    """

    def __init__(self, ctx, processors=(), stall_limit=None):
        self.ctx = ctx
        self.processors = list(processors)
        self.channels = []
        self.stall_limit = stall_limit
        self._started = False

    def add(self, processor):
        self.processors.append(processor)
        return processor

    def channel(self, name, capacity=None, record=False):
        """Create a channel owned by this engine (for reporting)."""
        ch = Channel(name, capacity=capacity, record=record)
        self.channels.append(ch)
        return ch

    def connect(self, producer, out_port, consumer, in_port, name=None,
                capacity=None, record=False):
        """Wire ``producer.out_port -> consumer.in_port`` with a new FIFO."""
        name = name or "%s.%s->%s.%s" % (producer.name, out_port,
                                         consumer.name, in_port)
        ch = self.channel(name, capacity=capacity, record=record)
        producer.connect_output(out_port, ch)
        consumer.connect_input(in_port, ch)
        return ch

    def build(self):
        """Create all processor signals inside the design context."""
        if not self.processors:
            raise SimulationError("engine has no processors")
        with self.ctx:
            for p in self.processors:
                p.build(self.ctx)
        return self

    def start(self):
        for p in self.processors:
            p.start()
        self._started = True
        return self

    def run(self, cycles=None, until_done=False, watchdog=None,
            stall_limit=None):
        """Advance the simulation.

        ``cycles`` bounds the number of clock edges; with
        ``until_done=True`` the engine additionally stops as soon as
        every processor has finished, or as soon as a whole cycle passes
        with no channel activity (free-running transform processors never
        terminate by themselves — an idle cycle means the pipeline has
        drained).  Returns the number of cycles run.

        ``watchdog`` (any object with ``start()`` and ``check(cycles)``,
        typically :class:`repro.robust.guards.Watchdog`) bounds the run
        by cycle count and wall-clock budget.  ``stall_limit`` overrides
        the engine-level stall detector for this run.
        """
        if not self._started:
            self.build()
            self.start()
        if cycles is None and not until_done and watchdog is None:
            raise SimulationError("run() needs a cycle bound, a watchdog "
                                  "or until_done=True")
        if stall_limit is None:
            stall_limit = self.stall_limit
        if watchdog is not None:
            watchdog.start()
        n = 0
        idle = 0
        # One span per run() call — never per cycle; the hot loop below
        # stays untouched when tracing is disabled.
        with obs_trace.span("sim.engine.run",
                            processors=len(self.processors),
                            channels=len(self.channels)) as sp:
            with self.ctx:
                while cycles is None or n < cycles:
                    activity_before = sum(c.n_put + c.n_get
                                          for c in self.channels)
                    any_alive = False
                    for p in self.processors:
                        if p.step():
                            any_alive = True
                    self.ctx.tick()
                    n += 1
                    if watchdog is not None:
                        watchdog.check(n)
                    activity_after = sum(c.n_put + c.n_get
                                         for c in self.channels)
                    stalled = (self.channels and any_alive
                               and activity_after == activity_before)
                    if until_done:
                        if not any_alive:
                            break
                        if stalled:
                            break
                    idle = idle + 1 if stalled else 0
                    if stall_limit is not None and idle >= stall_limit:
                        alive = [p.name for p in self.processors
                                 if not p.done]
                        raise DeadlockError(
                            "no channel activity for %d consecutive "
                            "cycles; processors still alive: %s"
                            % (idle, ", ".join(alive)),
                            processors=alive, cycles=self.ctx.cycle)
            sp.set(cycles=n)
        return n

    def __repr__(self):
        return "Engine(%d processors, %d channels, cycle=%d)" % (
            len(self.processors), len(self.channels), self.ctx.cycle)
