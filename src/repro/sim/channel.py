"""Communication channels between processors.

The paper's design environment builds systems out of "several
communicating processors".  A :class:`Channel` is the point-to-point
FIFO carrying samples between them; ``get``/``put`` are the primitives
the paper's behavioral C code uses (``d[0] = get(x); ... put(y);``).
"""

from __future__ import annotations

from collections import deque

from repro.core.errors import ChannelEmpty, ChannelFull

__all__ = ["Channel", "DROP"]

#: Sentinel a channel fault hook returns to drop the value in transit.
DROP = object()


class Channel:
    """A FIFO of plain Python values (floats or Expr-compatible scalars)."""

    def __init__(self, name, capacity=None, record=False):
        self.name = str(name)
        self.capacity = capacity
        self._fifo = deque()
        self._record = [] if record else None
        self.n_put = 0
        self.n_get = 0
        self.n_dropped = 0
        self._fault = None

    def set_fault(self, fn):
        """Install a fault hook ``fn(value) -> value | DROP``.

        Models lossy or corrupting links for fault-injection campaigns:
        the hook sees every value entering the FIFO and may rewrite it or
        return :data:`DROP` to lose it (counted in ``n_dropped``).  Pass
        ``None`` to clear.
        """
        self._fault = fn
        return self

    def put(self, value):
        if self._fault is not None:
            value = self._fault(value)
            if value is DROP:
                self.n_dropped += 1
                return
        if self.capacity is not None and len(self._fifo) >= self.capacity:
            raise ChannelFull("channel %r is full (capacity %d)"
                              % (self.name, self.capacity))
        self._fifo.append(value)
        self.n_put += 1
        if self._record is not None:
            self._record.append(value)

    def get(self):
        if not self._fifo:
            raise ChannelEmpty("get() on empty channel %r" % self.name)
        self.n_get += 1
        return self._fifo.popleft()

    def try_get(self, default=None):
        """Non-blocking get: returns ``default`` when empty."""
        if not self._fifo:
            return default
        self.n_get += 1
        return self._fifo.popleft()

    def peek(self):
        if not self._fifo:
            raise ChannelEmpty("peek() on empty channel %r" % self.name)
        return self._fifo[0]

    def extend(self, values):
        for v in values:
            self.put(v)

    @property
    def empty(self):
        return not self._fifo

    def __len__(self):
        return len(self._fifo)

    @property
    def recorded(self):
        """All values ever put (requires ``record=True``)."""
        if self._record is None:
            raise ChannelEmpty("channel %r does not record history"
                               % self.name)
        return list(self._record)

    def __repr__(self):
        return "Channel(%r, depth=%d, put=%d, get=%d)" % (
            self.name, len(self._fifo), self.n_put, self.n_get)
