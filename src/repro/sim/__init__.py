"""Simulation engine: processors, channels, stimuli."""

from repro.sim.channel import Channel
from repro.sim.engine import Engine
from repro.sim.processor import FuncProcessor, Processor
from repro.sim.stimuli import Sink, Source

__all__ = ["Channel", "Engine", "Processor", "FuncProcessor", "Source",
           "Sink"]
