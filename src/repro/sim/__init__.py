"""Simulation engine: processors, channels, stimuli."""

from repro.sim.channel import DROP, Channel
from repro.sim.engine import Engine
from repro.sim.processor import FuncProcessor, Processor
from repro.sim.stimuli import Sink, Source

__all__ = ["Channel", "DROP", "Engine", "Processor", "FuncProcessor",
           "Source", "Sink"]
