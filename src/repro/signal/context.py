"""Design context: the registry and clock of one design-under-refinement.

A :class:`DesignContext` owns every signal object created while it is
active, the deterministic random generator used by ``error()``
annotations, the overflow log, and the register clock.  The refinement
flow creates a fresh context for every simulation iteration so statistics
never leak between runs.

Contexts nest with ``with`` (a thread-local stack); signal constructors
pick up the innermost active context when none is passed explicitly.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

from repro.core.errors import DesignError, NonFiniteError

__all__ = ["DesignContext", "GuardEvent", "current_context"]

#: Non-finite-value guard actions (see :mod:`repro.robust.guards`):
#: ``raise`` aborts the simulation, ``record`` sanitizes and logs every
#: trip, ``sanitize`` replaces the value and only counts.
GUARD_ACTIONS = ("raise", "record", "sanitize")

#: What a sanitized non-finite value is replaced with: ``hold`` keeps the
#: signal's previous value, ``zero`` forces 0.0.
GUARD_REPLACEMENTS = ("hold", "zero")


@dataclass(frozen=True)
class GuardEvent:
    """One sanitized non-finite assignment (guard action ``record``)."""

    cycle: int
    signal: str
    fx: float
    fl: float
    replacement_fx: float
    replacement_fl: float

    def describe(self):
        return ("cycle %d: signal %r received (fx=%r, fl=%r), "
                "sanitized to (%g, %g)"
                % (self.cycle, self.signal, self.fx, self.fl,
                   self.replacement_fx, self.replacement_fl))

_local = threading.local()


def _stack():
    if not hasattr(_local, "stack"):
        _local.stack = []
    return _local.stack


def current_context():
    """Innermost active context (a default one is created lazily)."""
    stack = _stack()
    if not stack:
        stack.append(DesignContext("default"))
    return stack[-1]


class DesignContext:
    """Registry, clock and policy knobs shared by the signals of a design.

    Parameters
    ----------
    name:
        Label used in reports.
    seed:
        Seed of the generator backing ``sig.error(q)`` injections.
    overflow_action:
        ``"record"`` (default) logs overflows of ``error``-mode types and
        continues with the saturated value; ``"raise"`` raises
        :class:`~repro.core.errors.FixedPointOverflowError` immediately.
    guard_action:
        Non-finite-value policy applied on every assignment: ``"raise"``
        (default) raises :class:`~repro.core.errors.NonFiniteError` the
        moment a NaN or infinity reaches a signal; ``"record"`` sanitizes
        the value and logs a :class:`GuardEvent`; ``"sanitize"`` replaces
        the value and only counts the trip.
    guard_replacement:
        Sanitization rule: ``"hold"`` (default) keeps the signal's last
        good value, ``"zero"`` forces 0.0.
    guard_max_events:
        Cap on the number of retained :class:`GuardEvent` entries (the
        trip *counter* is never capped).
    """

    def __init__(self, name="design", seed=0, overflow_action="record",
                 guard_action="raise", guard_replacement="hold",
                 guard_max_events=1000):
        if guard_action not in GUARD_ACTIONS:
            raise DesignError("guard_action must be one of %s, got %r"
                              % (", ".join(GUARD_ACTIONS), guard_action))
        if guard_replacement not in GUARD_REPLACEMENTS:
            raise DesignError("guard_replacement must be one of %s, got %r"
                              % (", ".join(GUARD_REPLACEMENTS),
                                 guard_replacement))
        self.name = name
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.overflow_action = overflow_action
        self.guard_action = guard_action
        self.guard_replacement = guard_replacement
        self.guard_max_events = guard_max_events
        self.guard_log = []
        self.guard_trip_count = 0
        self.watchdog = None
        self.cycle = 0
        self.tracer = None
        self._signals = {}
        self._order = []
        self._registers = []
        self.overflow_log = []

    # -- registry -----------------------------------------------------------

    def register_signal(self, sig):
        if sig.name in self._signals:
            raise DesignError("duplicate signal name %r in context %r"
                              % (sig.name, self.name))
        self._signals[sig.name] = sig
        self._order.append(sig.name)
        if sig.is_register:
            self._registers.append(sig)

    def signals(self):
        """All signals in declaration order."""
        return [self._signals[n] for n in self._order]

    def signal_names(self):
        return list(self._order)

    def get(self, name):
        try:
            return self._signals[name]
        except KeyError:
            raise DesignError("no signal named %r in context %r"
                              % (name, self.name)) from None

    def __contains__(self, name):
        return name in self._signals

    def __len__(self):
        return len(self._signals)

    # -- clock ----------------------------------------------------------------

    def tick(self):
        """Advance one clock cycle: commit every register's pending value."""
        for r in self._registers:
            r.commit()
        self.cycle += 1
        if self.watchdog is not None:
            self.watchdog.check(self.cycle)

    # -- bookkeeping -------------------------------------------------------

    def log_overflow(self, sig_name, value):
        self.overflow_log.append((self.cycle, sig_name, value))

    def guard_non_finite(self, sig, fx, fl):
        """Apply the non-finite-value policy to one assignment.

        Returns the sanitized ``(fx, fl)`` pair, or raises
        :class:`~repro.core.errors.NonFiniteError` under ``"raise"``.
        Finite components pass through untouched; only the non-finite
        side is replaced.
        """
        if self.guard_action == "raise":
            raise NonFiniteError(
                "non-finite value reached signal %r at cycle %d "
                "(fx=%r, fl=%r)" % (sig.name, self.cycle, fx, fl),
                signal=sig.name, value=fx if not math.isfinite(fx) else fl)
        if self.guard_replacement == "hold":
            sub_fx, sub_fl = sig.fx, sig.fl
            if not math.isfinite(sub_fx):
                sub_fx = 0.0
            if not math.isfinite(sub_fl):
                sub_fl = 0.0
        else:  # zero
            sub_fx = sub_fl = 0.0
        new_fx = fx if math.isfinite(fx) else sub_fx
        new_fl = fl if math.isfinite(fl) else sub_fl
        self.guard_trip_count += 1
        if (self.guard_action == "record"
                and len(self.guard_log) < self.guard_max_events):
            self.guard_log.append(GuardEvent(self.cycle, sig.name, fx, fl,
                                             new_fx, new_fl))
        return new_fx, new_fl

    def reset_stats(self):
        """Clear all monitoring statistics (values are preserved)."""
        for s in self.signals():
            s.reset_stats()
        self.overflow_log.clear()
        self.guard_log.clear()
        self.guard_trip_count = 0

    def snapshot_error_stats(self):
        """Per-signal copy of the produced-error statistics (for the
        divergence growth test of the refinement flow)."""
        snap = {}
        for s in self.signals():
            snap[s.name] = (s.err_produced.count, s.err_produced.mean,
                            s.err_produced.std, s.err_produced.max_abs)
        return snap

    # -- context manager ----------------------------------------------------

    def __enter__(self):
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        stack = _stack()
        if not stack or stack[-1] is not self:
            raise DesignError("unbalanced DesignContext nesting")
        stack.pop()
        return False

    def __repr__(self):
        return "DesignContext(%r, %d signals, cycle=%d)" % (
            self.name, len(self._signals), self.cycle)
