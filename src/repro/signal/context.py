"""Design context: the registry and clock of one design-under-refinement.

A :class:`DesignContext` owns every signal object created while it is
active, the deterministic random generator used by ``error()``
annotations, the overflow log, and the register clock.  The refinement
flow creates a fresh context for every simulation iteration so statistics
never leak between runs.

Contexts nest with ``with`` (a thread-local stack); signal constructors
pick up the innermost active context when none is passed explicitly.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.errors import DesignError

__all__ = ["DesignContext", "current_context"]

_local = threading.local()


def _stack():
    if not hasattr(_local, "stack"):
        _local.stack = []
    return _local.stack


def current_context():
    """Innermost active context (a default one is created lazily)."""
    stack = _stack()
    if not stack:
        stack.append(DesignContext("default"))
    return stack[-1]


class DesignContext:
    """Registry, clock and policy knobs shared by the signals of a design.

    Parameters
    ----------
    name:
        Label used in reports.
    seed:
        Seed of the generator backing ``sig.error(q)`` injections.
    overflow_action:
        ``"record"`` (default) logs overflows of ``error``-mode types and
        continues with the saturated value; ``"raise"`` raises
        :class:`~repro.core.errors.FixedPointOverflowError` immediately.
    """

    def __init__(self, name="design", seed=0, overflow_action="record"):
        self.name = name
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.overflow_action = overflow_action
        self.cycle = 0
        self.tracer = None
        self._signals = {}
        self._order = []
        self._registers = []
        self.overflow_log = []

    # -- registry -----------------------------------------------------------

    def register_signal(self, sig):
        if sig.name in self._signals:
            raise DesignError("duplicate signal name %r in context %r"
                              % (sig.name, self.name))
        self._signals[sig.name] = sig
        self._order.append(sig.name)
        if sig.is_register:
            self._registers.append(sig)

    def signals(self):
        """All signals in declaration order."""
        return [self._signals[n] for n in self._order]

    def signal_names(self):
        return list(self._order)

    def get(self, name):
        try:
            return self._signals[name]
        except KeyError:
            raise DesignError("no signal named %r in context %r"
                              % (name, self.name)) from None

    def __contains__(self, name):
        return name in self._signals

    def __len__(self):
        return len(self._signals)

    # -- clock ----------------------------------------------------------------

    def tick(self):
        """Advance one clock cycle: commit every register's pending value."""
        for r in self._registers:
            r.commit()
        self.cycle += 1

    # -- bookkeeping -------------------------------------------------------

    def log_overflow(self, sig_name, value):
        self.overflow_log.append((self.cycle, sig_name, value))

    def reset_stats(self):
        """Clear all monitoring statistics (values are preserved)."""
        for s in self.signals():
            s.reset_stats()
        self.overflow_log.clear()

    def snapshot_error_stats(self):
        """Per-signal copy of the produced-error statistics (for the
        divergence growth test of the refinement flow)."""
        snap = {}
        for s in self.signals():
            snap[s.name] = (s.err_produced.count, s.err_produced.mean,
                            s.err_produced.std, s.err_produced.max_abs)
        return snap

    # -- context manager ----------------------------------------------------

    def __enter__(self):
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        stack = _stack()
        if not stack or stack[-1] is not self:
            raise DesignError("unbalanced DesignContext nesting")
        stack.pop()
        return False

    def __repr__(self):
        return "DesignContext(%r, %d signals, cycle=%d)" % (
            self.name, len(self._signals), self.cycle)
