"""Signal objects: the paper's ``sig`` and ``reg``.

A :class:`Sig` represents one wire of the design.  Declared with a
:class:`~repro.core.dtype.DType` it behaves as a fixed-point signal
(values are quantized on assignment); declared without one it behaves as
a floating-point signal.  Either way, every assignment simultaneously

* updates the **range monitor** (statistic-based MSB method): count,
  min and max of the incoming value,
* performs **range propagation** (quasi-analytical MSB method): the
  incoming expression's interval is accumulated into the signal's
  propagated range,
* updates the **error monitor** (LSB method): consumed error
  ``fl - fx`` before quantization and produced error ``fl - Q(fx)``
  after, plus the reference-value power needed for SQNR,

exactly as sketched in the paper's Figure 2/3.  A :class:`Reg` is a
registered signal: assignments land in a *next* slot that only becomes
visible after :meth:`DesignContext.tick` commits the clock edge.

Assignment spellings
--------------------
Python cannot overload ``=``, so three equivalent forms are provided::

    y.assign(a * b)      # explicit
    y <<= a * b          # HDL-style
    arr[i] = a * b       # true __setitem__ hook on SigArray/RegArray
"""

from __future__ import annotations

import math
from collections import deque

from repro.core.dtype import DType
from repro.core.errors import DesignError, FixedPointOverflowError
from repro.core.interval import Interval
from repro.core.stats import ErrorStat, RangeStat
from repro.signal.context import current_context
from repro.signal.expr import Expr, Operand, as_expr

__all__ = ["Sig", "Reg"]


class Sig(Operand):
    """A (possibly fixed-point) signal with built-in monitors."""

    is_register = False

    def __init__(self, name, dtype=None, ctx=None, init=0.0):
        if dtype is not None and not isinstance(dtype, DType):
            raise DesignError("dtype of signal %r must be a DType, got %r"
                              % (name, dtype))
        self.name = str(name)
        self.dtype = dtype
        self.ctx = ctx if ctx is not None else current_context()
        self.role = ""

        self._fx = float(init)
        self._fl = float(init)
        self.init_value = float(init)

        # Monitors.
        self.range_stat = RangeStat()    # incoming (pre-quantization) values
        self.val_stat = ErrorStat()      # reference values (for power/SQNR)
        self.err_consumed = ErrorStat()  # fl - fx before quantization
        self.err_produced = ErrorStat()  # fl - Q(fx) after quantization
        self.overflow_count = 0

        # Annotations.
        self._forced_range = None        # Interval from .range(lo, hi)
        self._forced_error = None        # LSB amplitude q from .error(q)

        # Fault-injection hooks (see repro.robust.faults).
        self._fault_pre = None           # fn(sig, fx, fl) -> (fx, fl)
        self._fault_post = None          # fn(sig, qfx) -> qfx

        # Quasi-analytical propagated range (union over assignments).
        self._prop_ival = Interval()

        self._history = None
        self._node = None
        self.ctx.register_signal(self)

    # -- value access ----------------------------------------------------------

    @property
    def fx(self):
        """Current fixed-point value (exact in a double)."""
        return self._fx

    @property
    def fl(self):
        """Current floating-point reference value."""
        return self._fl

    @property
    def value(self):
        return self._fx

    def error(self, q=None):
        """Paper's dual-purpose ``error``: query or annotate.

        Called without arguments, returns the current difference error
        ``fl - fx``.  Called with an LSB amplitude ``q``, forwards to
        :meth:`error_spec` (the paper's ``x.error(q)`` annotation).
        """
        if q is None:
            return self._fl - self._fx
        return self.error_spec(q)

    def _read(self):
        """(fx, fl) pair visible to expressions reading this signal."""
        return self._fx, self._fl

    def read_interval(self):
        """Range seen by downstream range propagation.

        Priority: explicit ``range()`` annotation, then the declared type
        range, then the accumulated propagated range.  The power-on value
        is always part of the achievable set, so it seeds the propagation
        through feedback loops (this is what lets an unbounded
        accumulator *explode* instead of staying silently empty).
        """
        if self._forced_range is not None:
            return self._forced_range
        if self.dtype is not None:
            return self.dtype.range_interval()
        return self._prop_ival.union(Interval.point(self.init_value))

    def prop_interval(self):
        """Accumulated propagated range (diagnostics / reports)."""
        if self._forced_range is not None:
            return self._forced_range
        return self._prop_ival

    def _to_expr(self):
        fx, fl = self._read()
        node = None
        if self.ctx.tracer is not None:
            node = self.ctx.tracer.sig_node(self)
        return Expr(fx, fl, self.read_interval(), self.ctx, node)

    # -- annotations --------------------------------------------------------------

    def range(self, lo, hi):
        """Force the propagated range (the paper's ``x.range(lo, hi)``).

        Independent of the LSB side; used to break MSB explosion on
        feedback signals or to seed propagation at inputs.
        """
        self._forced_range = Interval(lo, hi)
        return self

    def error_spec(self, q):
        """Force the produced difference error (the paper's ``x.error(q)``).

        After this call the float reference no longer follows the true
        floating-point computation; instead every assignment re-derives it
        as ``Q(value) + U(-q/2, q/2)``, modelling an assumed quantization
        at LSB weight ``q``.  This decorrelates the error in sensitive
        feedback loops whose coupled simulation would otherwise diverge.
        """
        if q <= 0:
            raise DesignError("error amplitude must be positive, got %r" % q)
        self._forced_error = float(q)
        return self

    def clear_annotations(self):
        self._forced_range = None
        self._forced_error = None
        return self

    @property
    def forced_range(self):
        return self._forced_range

    @property
    def forced_error(self):
        return self._forced_error

    def set_dtype(self, dtype):
        """Retype the signal (used by the flow when applying a refinement)."""
        if dtype is not None and not isinstance(dtype, DType):
            raise DesignError("dtype of signal %r must be a DType or None"
                              % self.name)
        self.dtype = dtype
        self._prop_ival = Interval()
        return self

    def watch(self, maxlen=None):
        """Record per-assignment ``(fx, fl)`` history (for metrics/plots)."""
        self._history = deque(maxlen=maxlen)
        return self

    @property
    def history(self):
        return self._history

    # -- assignment -----------------------------------------------------------------

    def assign(self, value):
        """Quantize-on-assign with simultaneous range & error monitoring."""
        expr = as_expr(value)
        self._record(expr)
        return self

    def __ilshift__(self, value):
        self.assign(value)
        return self

    def fault_pre(self, fn):
        """Install a pre-quantization fault hook (``fn(sig, fx, fl)``).

        Models upstream faults — stuck-at values, scaled inputs, injected
        NaNs — applied to the incoming value pair before any monitor sees
        it.  Returns self; pass ``None`` to clear.
        """
        self._fault_pre = fn
        return self

    def fault_post(self, fn):
        """Install a post-quantization fault hook (``fn(sig, qfx)``).

        Models storage faults — bit flips in the quantized word — applied
        after quantization; the float reference is untouched, so the
        produced-error monitor measures the fault's impact directly.
        Returns self; pass ``None`` to clear.
        """
        self._fault_post = fn
        return self

    def clear_faults(self):
        self._fault_pre = None
        self._fault_post = None
        return self

    def _record(self, expr):
        in_fx = expr.fx
        in_fl = expr.fl

        if self._fault_pre is not None:
            in_fx, in_fl = self._fault_pre(self, in_fx, in_fl)

        # Non-finite guard: NaN/Inf must never be quantized or folded
        # into the monitors silently; the context policy decides between
        # raising, recording + sanitizing, and sanitizing.  Runs after
        # the fault hook so injected non-finites are guarded too.
        if not (math.isfinite(in_fx) and math.isfinite(in_fl)):
            in_fx, in_fl = self.ctx.guard_non_finite(self, in_fx, in_fl)

        # Statistic-based range monitoring (MSB side).
        self.range_stat.update(in_fx)

        # Consumed difference error (LSB side, before quantization).
        self.err_consumed.update(in_fl - in_fx)

        # Quantize the fixed-point value.
        if self.dtype is not None:
            qfx, overflowed = self._quantize(in_fx)
        else:
            qfx, overflowed = in_fx, False
        if overflowed:
            self.overflow_count += 1
            self.ctx.log_overflow(self.name, in_fx)

        if self._fault_post is not None:
            qfx = self._fault_post(self, qfx)

        # Float reference: true value, unless an error() annotation
        # decouples it (uniform error of one assumed LSB).
        if self._forced_error is not None:
            q = self._forced_error
            fl = qfx + self.ctx.rng.uniform(-0.5 * q, 0.5 * q)
        else:
            fl = in_fl

        # Produced difference error and reference power.
        self.err_produced.update(fl - qfx)
        self.val_stat.update(fl)

        # Quasi-analytical range propagation.
        self._accumulate_interval(expr.ival)

        self._store(qfx, fl)

        if self._history is not None:
            self._history.append((qfx, fl))
        if self.ctx.tracer is not None:
            src = expr.node
            if src is None:
                src = self.ctx.tracer.const_node(in_fx)
            self.ctx.tracer.assign_edge(src, self)

    def _quantize(self, value):
        dt = self.dtype
        if dt.msbspec == "error":
            # Quantize with saturation but flag the overflow; the context
            # policy decides between recording and raising.
            info = dt.with_(msbspec="saturate").quantize_info(value,
                                                              name=self.name)
            if info.overflowed and self.ctx.overflow_action == "raise":
                raise FixedPointOverflowError(
                    "value %r overflows %s on signal %s"
                    % (value, dt.spec(), self.name),
                    signal=self.name, value=value, dtype=dt)
            return info.value, info.overflowed
        info = dt.quantize_info(value, name=self.name)
        return info.value, info.overflowed

    def _accumulate_interval(self, ival):
        if self._forced_range is not None:
            # Forced ranges freeze propagation (paper: explicit range
            # overrides and stops feedback explosion).
            return
        if self.dtype is not None and self.dtype.msbspec == "saturate":
            ival = ival.clip(self.dtype.range_interval())
        self._prop_ival = self._prop_ival.union(ival)

    def _store(self, fx, fl):
        self._fx = fx
        self._fl = fl

    # -- statistics ----------------------------------------------------------------------

    def reset_stats(self):
        self.range_stat.reset()
        self.val_stat.reset()
        self.err_consumed.reset()
        self.err_produced.reset()
        self.overflow_count = 0
        self._prop_ival = Interval()
        if self._history is not None:
            self._history.clear()

    def sqnr_db(self):
        """Signal-to-quantization-noise ratio of this signal in dB.

        Reference power comes from the float simulation, noise power from
        the produced difference error — both gathered in the same run.
        Returns ``inf`` for an error-free signal and ``nan`` when no data
        was collected.
        """
        if self.val_stat.is_empty:
            return math.nan
        noise = self.err_produced.rms
        if noise == 0.0:
            return math.inf
        signal = self.val_stat.rms
        if signal == 0.0:
            return -math.inf
        return 20.0 * math.log10(signal / noise)

    def __repr__(self):
        spec = self.dtype.spec() if self.dtype is not None else "float"
        return "%s(%r, %s, fx=%g)" % (type(self).__name__, self.name, spec,
                                      self._fx)


class Reg(Sig):
    """Registered signal: assignments become visible at the next clock edge.

    Reads always return the value committed at the most recent
    :meth:`DesignContext.tick`; assignments go to a pending slot.  When a
    register is not assigned during a cycle it holds its value.
    """

    is_register = True

    def __init__(self, name, dtype=None, ctx=None, init=0.0):
        super().__init__(name, dtype=dtype, ctx=ctx, init=init)
        self._pending = None

    def _store(self, fx, fl):
        self._pending = (fx, fl)

    def commit(self):
        """Clock edge: move the pending value into the visible slot."""
        if self._pending is not None:
            self._fx, self._fl = self._pending
            self._pending = None

    @property
    def next_fx(self):
        """Pending fixed-point value (None when not assigned this cycle)."""
        return None if self._pending is None else self._pending[0]

    def set_init(self, value):
        """Set the power-on value of both simulations (no monitoring)."""
        v = float(value)
        if self.dtype is not None:
            v = self.dtype.with_(msbspec="saturate").quantize(v)
        self._fx = v
        self._fl = float(value)
        self.init_value = float(value)
        self._pending = None
        return self
