"""Signal objects: the paper's ``sig`` and ``reg``.

A :class:`Sig` represents one wire of the design.  Declared with a
:class:`~repro.core.dtype.DType` it behaves as a fixed-point signal
(values are quantized on assignment); declared without one it behaves as
a floating-point signal.  Either way, every assignment simultaneously

* updates the **range monitor** (statistic-based MSB method): count,
  min and max of the incoming value,
* performs **range propagation** (quasi-analytical MSB method): the
  incoming expression's interval is accumulated into the signal's
  propagated range,
* updates the **error monitor** (LSB method): consumed error
  ``fl - fx`` before quantization and produced error ``fl - Q(fx)``
  after, plus the reference-value power needed for SQNR,

exactly as sketched in the paper's Figure 2/3.  A :class:`Reg` is a
registered signal: assignments land in a *next* slot that only becomes
visible after :meth:`DesignContext.tick` commits the clock edge.

Assignment spellings
--------------------
Python cannot overload ``=``, so three equivalent forms are provided::

    y.assign(a * b)      # explicit
    y <<= a * b          # HDL-style
    arr[i] = a * b       # true __setitem__ hook on SigArray/RegArray

Performance notes
-----------------
``assign`` is the single hottest call of every monitored simulation, so
this module is written for the interpreter, not for elegance:

* quantization goes through a compiled per-format kernel
  (:mod:`repro.core.kernels`) cached on the signal — no mode strings,
  no ``QuantizeResult``, no per-assignment ``DType.with_`` for the
  ``error``-mode saturating variant,
* the propagated range is accumulated by mutating one privately-owned
  :class:`~repro.core.interval.Interval` in place instead of allocating
  a union per assignment (``prop_interval()`` returns a snapshot copy),
* ``__slots__`` keeps instances dict-free.
"""

from __future__ import annotations

import sys
from collections import deque
from math import inf, log10, nan

from repro.core.dtype import DType
from repro.core.errors import DesignError, FixedPointOverflowError
from repro.core.interval import Interval, fast_interval
from repro.core.stats import ErrorStat, RangeStat
from repro.signal.context import current_context
from repro.signal.expr import Expr, Operand, as_expr

__all__ = ["Sig", "Reg"]


def _decl_site():
    """(filename, lineno) of the design code declaring a signal.

    Walks out of the library frames (``repro.signal`` and
    ``repro.refine`` internals) to the first user frame.  Executed once
    per signal *construction* — never on the assignment hot path — and
    consumed by the static lint layer to anchor findings at real source
    locations (SARIF ``physicalLocation``).
    """
    try:
        f = sys._getframe(2)
    except ValueError:                       # pragma: no cover - shallow stack
        return None
    while f is not None:
        mod = f.f_globals.get("__name__", "")
        if not (mod.startswith("repro.signal")
                or mod.startswith("repro.refine")):
            return (f.f_code.co_filename, f.f_lineno)
        f = f.f_back
    return None


class Sig(Operand):
    """A (possibly fixed-point) signal with built-in monitors.

    Every assignment runs twice — once through the fixed-point
    implementation, once through the float reference — so the monitors
    can measure quantization effects directly:

    >>> from repro.core.dtype import DType
    >>> from repro.signal.context import DesignContext
    >>> with DesignContext("doc", overflow_action="record") as ctx:
    ...     x = Sig("x", DType("T", 8, 6, "tc", "saturate", "round"))
    ...     _ = x.assign(0.7071)     # assign() returns the signal
    ...     ctx.tick()
    >>> x.fx                                 # quantized implementation
    0.703125
    >>> x.fl                                 # float reference
    0.7071
    >>> x.range_stat.count
    1

    Untyped signals pass values through unquantized; give them a type
    later with :meth:`set_dtype` (the refinement flow does exactly
    that).
    """

    __slots__ = (
        "name", "dtype", "ctx", "role", "_fx", "_fl", "init_value",
        "range_stat", "val_stat", "err_consumed", "err_produced",
        "overflow_count", "_forced_range", "_forced_error", "_fault_pre",
        "_fault_post", "_prop_ival", "_read_ival", "_history", "_node",
        "_kernel", "_err_mode", "_sat_lo", "_sat_hi", "_expr_cache",
        "decl_site", "_obs",
    )

    is_register = False

    def __init__(self, name, dtype=None, ctx=None, init=0.0):
        if dtype is not None and not isinstance(dtype, DType):
            raise DesignError("dtype of signal %r must be a DType, got %r"
                              % (name, dtype))
        self.name = str(name)
        self.ctx = ctx if ctx is not None else current_context()
        self.role = ""
        #: (filename, lineno) where design code declared this signal.
        self.decl_site = _decl_site()

        self._fx = float(init)
        self._fl = float(init)
        self.init_value = float(init)

        # Monitors.
        self.range_stat = RangeStat()    # incoming (pre-quantization) values
        self.val_stat = ErrorStat()      # reference values (for power/SQNR)
        self.err_consumed = ErrorStat()  # fl - fx before quantization
        self.err_produced = ErrorStat()  # fl - Q(fx) after quantization
        self.overflow_count = 0

        # Annotations.
        self._forced_range = None        # Interval from .range(lo, hi)
        self._forced_error = None        # LSB amplitude q from .error(q)

        # Fault-injection hooks (see repro.robust.faults).
        self._fault_pre = None           # fn(sig, fx, fl) -> (fx, fl)
        self._fault_post = None          # fn(sig, qfx) -> qfx

        # Quantization metric counters (repro.obs.metrics).  Populated
        # lazily by the instrumented _record variant; always None while
        # observability is disabled — the default _record never reads it.
        self._obs = None

        # Quasi-analytical propagated range (union over assignments),
        # mutated in place by _record.
        self._prop_ival = Interval()

        self._history = None
        self._node = None
        self._bind_dtype(dtype)
        self.ctx.register_signal(self)

    def _bind_dtype(self, dtype):
        """Install ``dtype`` and rebuild the per-signal fast-path caches."""
        self.dtype = dtype
        self._expr_cache = None
        if dtype is None:
            self._kernel = None
            self._err_mode = False
            self._sat_lo = None
            self._sat_hi = None
            # Range visible to readers: propagated range plus the
            # power-on value, maintained incrementally.
            self._read_ival = fast_interval(self.init_value, self.init_value)
            p = self._prop_ival
            if p.lo <= p.hi:
                r = self._read_ival
                if p.lo < r.lo:
                    r.lo = p.lo
                if p.hi > r.hi:
                    r.hi = p.hi
            return
        self._err_mode = dtype.msbspec == "error"
        # error-mode signals quantize through the saturating variant and
        # flag the overflow; the context policy decides raise/record.
        self._kernel = (dtype.saturating.kernel if self._err_mode
                        else dtype.kernel)
        self._read_ival = None
        if dtype.msbspec == "saturate":
            self._sat_lo = dtype.min_value
            self._sat_hi = dtype.max_value
        else:
            self._sat_lo = None
            self._sat_hi = None

    # -- value access ----------------------------------------------------------

    @property
    def fx(self):
        """Current fixed-point value (exact in a double)."""
        return self._fx

    @property
    def fl(self):
        """Current floating-point reference value."""
        return self._fl

    @property
    def value(self):
        return self._fx

    def error(self, q=None):
        """Paper's dual-purpose ``error``: query or annotate.

        Called without arguments, returns the current difference error
        ``fl - fx``.  Called with an LSB amplitude ``q``, forwards to
        :meth:`error_spec` (the paper's ``x.error(q)`` annotation).
        """
        if q is None:
            return self._fl - self._fx
        return self.error_spec(q)

    def _read(self):
        """(fx, fl) pair visible to expressions reading this signal."""
        return self._fx, self._fl

    def read_interval(self):
        """Range seen by downstream range propagation.

        Priority: explicit ``range()`` annotation, then the declared type
        range, then the accumulated propagated range.  The power-on value
        is always part of the achievable set, so it seeds the propagation
        through feedback loops (this is what lets an unbounded
        accumulator *explode* instead of staying silently empty).

        The returned interval is a live, read-only view (it may grow as
        further assignments are monitored).
        """
        if self._forced_range is not None:
            return self._forced_range
        dt = self.dtype
        if dt is not None:
            return dt.range_interval()
        return self._read_ival

    def prop_interval(self):
        """Accumulated propagated range (diagnostics / reports)."""
        if self._forced_range is not None:
            return self._forced_range
        return self._prop_ival.copy()

    def _to_expr(self):
        ctx = self.ctx
        if ctx.tracer is not None:
            e = Expr.__new__(Expr)
            e.fx = self._fx
            e.fl = self._fl
            e.ival = self.read_interval()
            e.ctx = ctx
            e.node = ctx.tracer.sig_node(self)
            return e
        # Untraced reads reuse one Expr per signal: its interval is the
        # live read view anyway, and fx/fl are refreshed per read.  The
        # object is consumed immediately by the expression machinery, so
        # sharing it between reads of the same signal is safe.
        e = self._expr_cache
        if e is None:
            e = Expr.__new__(Expr)
            e.ival = self.read_interval()
            e.ctx = ctx
            e.node = None
            self._expr_cache = e
        e.fx = self._fx
        e.fl = self._fl
        return e

    # -- annotations --------------------------------------------------------------

    def range(self, lo, hi):
        """Force the propagated range (the paper's ``x.range(lo, hi)``).

        Independent of the LSB side; used to break MSB explosion on
        feedback signals or to seed propagation at inputs.
        """
        self._forced_range = Interval(lo, hi)
        self._expr_cache = None
        return self

    def error_spec(self, q):
        """Force the produced difference error (the paper's ``x.error(q)``).

        After this call the float reference no longer follows the true
        floating-point computation; instead every assignment re-derives it
        as ``Q(value) + U(-q/2, q/2)``, modelling an assumed quantization
        at LSB weight ``q``.  This decorrelates the error in sensitive
        feedback loops whose coupled simulation would otherwise diverge.
        """
        if q <= 0:
            raise DesignError("error amplitude must be positive, got %r" % q)
        self._forced_error = float(q)
        return self

    def clear_annotations(self):
        self._forced_range = None
        self._forced_error = None
        self._expr_cache = None
        return self

    @property
    def forced_range(self):
        return self._forced_range

    @property
    def forced_error(self):
        return self._forced_error

    def set_dtype(self, dtype):
        """Retype the signal (used by the flow when applying a refinement)."""
        if dtype is not None and not isinstance(dtype, DType):
            raise DesignError("dtype of signal %r must be a DType or None"
                              % self.name)
        self._prop_ival = Interval()
        self._bind_dtype(dtype)
        return self

    def watch(self, maxlen=None):
        """Record per-assignment ``(fx, fl)`` history (for metrics/plots)."""
        self._history = deque(maxlen=maxlen)
        return self

    @property
    def history(self):
        return self._history

    # -- assignment -----------------------------------------------------------------

    def assign(self, value):
        """Quantize-on-assign with simultaneous range & error monitoring."""
        self._record(as_expr(value))
        return self

    def __ilshift__(self, value):
        self._record(as_expr(value))
        return self

    def fault_pre(self, fn):
        """Install a pre-quantization fault hook (``fn(sig, fx, fl)``).

        Models upstream faults — stuck-at values, scaled inputs, injected
        NaNs — applied to the incoming value pair before any monitor sees
        it.  Returns self; pass ``None`` to clear.
        """
        self._fault_pre = fn
        return self

    def fault_post(self, fn):
        """Install a post-quantization fault hook (``fn(sig, qfx)``).

        Models storage faults — bit flips in the quantized word — applied
        after quantization; the float reference is untouched, so the
        produced-error monitor measures the fault's impact directly.
        Returns self; pass ``None`` to clear.
        """
        self._fault_post = fn
        return self

    def clear_faults(self):
        self._fault_pre = None
        self._fault_post = None
        return self

    def _record(self, expr):
        in_fx = expr.fx
        in_fl = expr.fl

        if self._fault_pre is not None:
            in_fx, in_fl = self._fault_pre(self, in_fx, in_fl)

        # Non-finite guard: NaN/Inf must never be quantized or folded
        # into the monitors silently; the context policy decides between
        # raising, recording + sanitizing, and sanitizing.  Runs after
        # the fault hook so injected non-finites are guarded too.
        # (x - x == 0.0 exactly when x is finite.)
        if in_fx - in_fx != 0.0 or in_fl - in_fl != 0.0:
            in_fx, in_fl = self.ctx.guard_non_finite(self, in_fx, in_fl)

        # Statistic-based range monitoring (MSB side).
        self.range_stat.update(in_fx)

        # Consumed difference error (LSB side, before quantization).
        self.err_consumed.update(in_fl - in_fx)

        # Quantize the fixed-point value through the compiled kernel.
        kernel = self._kernel
        if kernel is not None:
            qfx, overflowed = kernel(in_fx)
            if overflowed:
                if self._err_mode and self.ctx.overflow_action == "raise":
                    raise FixedPointOverflowError(
                        "value %r overflows %s on signal %s"
                        % (in_fx, self.dtype.spec(), self.name),
                        signal=self.name, value=in_fx, dtype=self.dtype)
                self.overflow_count += 1
                self.ctx.log_overflow(self.name, in_fx)
        else:
            qfx = in_fx

        if self._fault_post is not None:
            qfx = self._fault_post(self, qfx)

        # Float reference: true value, unless an error() annotation
        # decouples it (uniform error of one assumed LSB).
        q = self._forced_error
        if q is not None:
            fl = qfx + self.ctx.rng.uniform(-0.5 * q, 0.5 * q)
        else:
            fl = in_fl

        # Produced difference error and reference power.
        self.err_produced.update(fl - qfx)
        self.val_stat.update(fl)

        # Quasi-analytical range propagation, in place.  Forced ranges
        # freeze propagation (paper: explicit range overrides and stops
        # feedback explosion); saturating types clip the incoming range.
        if self._forced_range is None:
            ival = expr.ival
            lo = ival.lo
            hi = ival.hi
            if lo <= hi:
                slo = self._sat_lo
                if slo is not None:
                    shi = self._sat_hi
                    lo = shi if lo > shi else (slo if lo < slo else lo)
                    hi = slo if hi < slo else (shi if hi > shi else hi)
                p = self._prop_ival
                if lo < p.lo:
                    p.lo = lo
                if hi > p.hi:
                    p.hi = hi
                r = self._read_ival
                if r is not None:
                    if lo < r.lo:
                        r.lo = lo
                    if hi > r.hi:
                        r.hi = hi

        self._store(qfx, fl)

        if self._history is not None:
            self._history.append((qfx, fl))
        tracer = self.ctx.tracer
        if tracer is not None:
            src = expr.node
            if src is None:
                src = tracer.const_node(in_fx)
            tracer.assign_edge(src, self)

    def _quantize(self, value):
        """Reference entry point of the per-assignment quantization.

        Kept for API compatibility and tests; ``_record`` inlines the
        same kernel call.
        """
        kernel = self._kernel
        if kernel is None:
            return value, False
        qfx, overflowed = kernel(value)
        if (overflowed and self._err_mode
                and self.ctx.overflow_action == "raise"):
            raise FixedPointOverflowError(
                "value %r overflows %s on signal %s"
                % (value, self.dtype.spec(), self.name),
                signal=self.name, value=value, dtype=self.dtype)
        return qfx, overflowed

    def _store(self, fx, fl):
        self._fx = fx
        self._fl = fl

    # -- statistics ----------------------------------------------------------------------

    def reset_stats(self):
        self.range_stat.reset()
        self.val_stat.reset()
        self.err_consumed.reset()
        self.err_produced.reset()
        self.overflow_count = 0
        self._obs = None
        self._prop_ival = Interval()
        if self.dtype is None:
            self._read_ival = fast_interval(self.init_value, self.init_value)
            self._expr_cache = None
        if self._history is not None:
            self._history.clear()

    def sqnr_db(self):
        """Signal-to-quantization-noise ratio of this signal in dB.

        Reference power comes from the float simulation, noise power from
        the produced difference error — both gathered in the same run.
        Returns ``inf`` for an error-free signal and ``nan`` when no data
        was collected.
        """
        if self.val_stat.is_empty:
            return nan
        noise = self.err_produced.rms
        if noise == 0.0:
            return inf
        signal = self.val_stat.rms
        if signal == 0.0:
            return -inf
        return 20.0 * log10(signal / noise)

    def __repr__(self):
        spec = self.dtype.spec() if self.dtype is not None else "float"
        return "%s(%r, %s, fx=%g)" % (type(self).__name__, self.name, spec,
                                      self._fx)


class Reg(Sig):
    """Registered signal: assignments become visible at the next clock edge.

    Reads always return the value committed at the most recent
    :meth:`DesignContext.tick`; assignments go to a pending slot.  When a
    register is not assigned during a cycle it holds its value.
    """

    __slots__ = ("_pend_fx", "_pend_fl", "_has_pending")

    is_register = True

    def __init__(self, name, dtype=None, ctx=None, init=0.0):
        super().__init__(name, dtype=dtype, ctx=ctx, init=init)
        self._pend_fx = 0.0
        self._pend_fl = 0.0
        self._has_pending = False

    def _store(self, fx, fl):
        self._pend_fx = fx
        self._pend_fl = fl
        self._has_pending = True

    def commit(self):
        """Clock edge: move the pending value into the visible slot."""
        if self._has_pending:
            self._fx = self._pend_fx
            self._fl = self._pend_fl
            self._has_pending = False

    @property
    def next_fx(self):
        """Pending fixed-point value (None when not assigned this cycle)."""
        return self._pend_fx if self._has_pending else None

    def set_init(self, value):
        """Set the power-on value of both simulations (no monitoring)."""
        v = float(value)
        if self.dtype is not None:
            v = self.dtype.saturating.quantize(v)
        self._fx = v
        self._fl = float(value)
        self.init_value = float(value)
        self._has_pending = False
        if self.dtype is None:
            # The power-on value seeds the readable range; rebuild it
            # from the accumulated propagation plus the new init.
            r = fast_interval(float(value), float(value))
            p = self._prop_ival
            if p.lo <= p.hi:
                if p.lo < r.lo:
                    r.lo = p.lo
                if p.hi > r.hi:
                    r.hi = p.hi
            self._read_ival = r
            self._expr_cache = None
        return self
