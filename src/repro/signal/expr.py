"""Expression values produced by overloaded operators.

Per the paper, arithmetic between signals is carried out in floating
point; quantization happens only at assignment.  Every operation
produces an :class:`Expr` holding three parallel results:

* ``fx`` — the operation applied to the operands' *fixed-point* values
  (represented exactly in a double),
* ``fl`` — the operation applied to the operands' *floating-point
  reference* values (the coupled dual simulation of Section 4.2),
* ``ival`` — the operation applied to the operands' value ranges
  (the quasi-analytical range propagation of Section 4.1).

Relational operators compare the fixed-point values only, so the fixed
and float simulations always take the same control decisions.
"""

from __future__ import annotations

import math
import numbers

from repro.core.interval import (EMPTY, Interval, fast_interval, iv_add,
                                 iv_mul, iv_neg, iv_sub)

__all__ = ["Expr", "as_expr", "Operand"]


class Operand:
    """Mixin providing arithmetic/relational overloading.

    Subclasses (``Expr``, ``Sig``) implement ``_to_expr()`` returning the
    equivalent :class:`Expr`.
    """

    __slots__ = ()

    def _to_expr(self):
        raise NotImplementedError

    # -- arithmetic -----------------------------------------------------------
    #
    # add/sub/mul/neg are the per-sample hot path of every monitored
    # simulation; they inline the interval arithmetic and build the
    # result Expr without re-validating floats.  Rarer operations
    # (div, shifts) keep the generic _binop/_unop route.

    def __add__(self, other):
        ea = self._to_expr()
        eb = as_expr(other)
        e = Expr.__new__(Expr)
        e.fx = ea.fx + eb.fx
        e.fl = ea.fl + eb.fl
        e.ival = iv_add(ea.ival, eb.ival)
        ctx = e.ctx = ea.ctx if ea.ctx is not None else eb.ctx
        e.node = (None if ctx is None or ctx.tracer is None
                  else _trace_node(ctx, "add", (ea, eb)))
        return e

    def __radd__(self, other):
        return _binop("add", other, self, lambda a, b: a + b)

    def __sub__(self, other):
        ea = self._to_expr()
        eb = as_expr(other)
        e = Expr.__new__(Expr)
        e.fx = ea.fx - eb.fx
        e.fl = ea.fl - eb.fl
        e.ival = iv_sub(ea.ival, eb.ival)
        ctx = e.ctx = ea.ctx if ea.ctx is not None else eb.ctx
        e.node = (None if ctx is None or ctx.tracer is None
                  else _trace_node(ctx, "sub", (ea, eb)))
        return e

    def __rsub__(self, other):
        return _binop("sub", other, self, lambda a, b: a - b)

    def __mul__(self, other):
        ea = self._to_expr()
        eb = as_expr(other)
        e = Expr.__new__(Expr)
        e.fx = ea.fx * eb.fx
        e.fl = ea.fl * eb.fl
        e.ival = iv_mul(ea.ival, eb.ival)
        ctx = e.ctx = ea.ctx if ea.ctx is not None else eb.ctx
        e.node = (None if ctx is None or ctx.tracer is None
                  else _trace_node(ctx, "mul", (ea, eb)))
        return e

    def __rmul__(self, other):
        return _binop("mul", other, self, lambda a, b: a * b)

    def __truediv__(self, other):
        return _binop("div", self, other, lambda a, b: a / b)

    def __rtruediv__(self, other):
        return _binop("div", other, self, lambda a, b: a / b)

    def __neg__(self):
        ea = self._to_expr()
        e = Expr.__new__(Expr)
        e.fx = -ea.fx
        e.fl = -ea.fl
        e.ival = iv_neg(ea.ival)
        ctx = e.ctx = ea.ctx
        e.node = (None if ctx is None or ctx.tracer is None
                  else _trace_node(ctx, "neg", (ea,)))
        return e

    def __pos__(self):
        return self._to_expr()

    def __abs__(self):
        return _unop("abs", self, lambda a: abs(a))

    def __lshift__(self, k):
        k = int(k)
        return _unop("shl%d" % k, self, lambda a: a * (2.0 ** k),
                     ifn=lambda iv: iv.scale_pow2(k))

    def __rshift__(self, k):
        k = int(k)
        return _unop("shr%d" % k, self, lambda a: a * (2.0 ** -k),
                     ifn=lambda iv: iv.scale_pow2(-k))

    # -- relational (fixed-point values steer control) -----------------------

    def __lt__(self, other):
        return self._to_expr().fx < _fx_of(other)

    def __le__(self, other):
        return self._to_expr().fx <= _fx_of(other)

    def __gt__(self, other):
        return self._to_expr().fx > _fx_of(other)

    def __ge__(self, other):
        return self._to_expr().fx >= _fx_of(other)

    def eq(self, other):
        """Value equality on the fixed-point values.

        Named method instead of ``__eq__`` so signals stay hashable and
        usable as dict keys / registry entries.
        """
        return self._to_expr().fx == _fx_of(other)

    # -- conversions ------------------------------------------------------------

    def __float__(self):
        return float(self._to_expr().fx)

    def __bool__(self):
        """Truthiness of the fixed-point value (nonzero = true)."""
        return self._to_expr().fx != 0.0


class Expr(Operand):
    """Result of an overloaded operation (see module docstring)."""

    __slots__ = ("fx", "fl", "ival", "ctx", "node")

    def __init__(self, fx, fl, ival=None, ctx=None, node=None):
        self.fx = float(fx)
        self.fl = float(fl)
        self.ival = Interval() if ival is None else ival
        self.ctx = ctx
        self.node = node

    def _to_expr(self):
        return self

    @property
    def error(self):
        """Current difference error: float reference minus fixed value."""
        return self.fl - self.fx

    def __repr__(self):
        return "Expr(fx=%g, fl=%g, ival=%r)" % (self.fx, self.fl, self.ival)


def as_expr(x):
    """Coerce a signal, expression or numeric scalar to an :class:`Expr`."""
    tx = type(x)
    if tx is Expr:
        return x
    if tx is float or tx is int:
        # Exact-type fast path for the overwhelmingly common literal
        # operands (coefficients, 0.0 resets, comparison constants).
        v = float(x)
        e = Expr.__new__(Expr)
        e.fx = v
        e.fl = v
        # A NaN carries no range information; give it an empty interval
        # so the assignment guard, not the interval arithmetic, decides
        # what happens to it.
        e.ival = EMPTY if v != v else fast_interval(v, v)
        e.ctx = None
        e.node = None
        return e
    if isinstance(x, Operand):
        return x._to_expr()
    if isinstance(x, numbers.Real):
        v = float(x)
        if math.isnan(v):
            return Expr(v, v, Interval())
        return Expr(v, v, Interval.point(v))
    raise TypeError("cannot use %r in a signal expression" % (x,))


def _fx_of(x):
    return as_expr(x).fx


def _trace_node(ctx, opname, operands):
    if ctx is None or ctx.tracer is None:
        return None
    in_nodes = [op.node if op.node is not None
                else ctx.tracer.const_node(op.fx) for op in operands]
    return ctx.tracer.op_node(opname, in_nodes)


def _binop(opname, a, b, vfn, ifn=None):
    ea = as_expr(a)
    eb = as_expr(b)
    fx = vfn(ea.fx, eb.fx)
    fl = vfn(ea.fl, eb.fl)
    if ifn is not None:
        ival = ifn(ea.ival, eb.ival)
    else:
        ival = vfn(ea.ival, eb.ival)
    ctx = ea.ctx if ea.ctx is not None else eb.ctx
    node = _trace_node(ctx, opname, (ea, eb))
    return Expr(fx, fl, ival, ctx, node)


def _unop(opname, a, vfn, ifn=None):
    ea = as_expr(a)
    fx = vfn(ea.fx)
    fl = vfn(ea.fl)
    ival = ifn(ea.ival) if ifn is not None else vfn(ea.ival)
    node = _trace_node(ea.ctx, opname, (ea,))
    return Expr(fx, fl, ival, ea.ctx, node)
