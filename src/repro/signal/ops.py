"""Extra overloaded operations beyond the arithmetic dunders.

``select`` is the expression-level conditional the paper's C++ writes as
``w > 0 ? 1 : -1``.  The condition is evaluated on the *fixed-point*
values only and the float reference follows the same branch, so the two
coupled simulations never take different control decisions (Section 4.2).
The propagated range is the union of both branches, which is what the
analytical method would derive from the signal flow graph.

``cast`` quantizes an intermediate expression without assigning it to a
signal — the paper's cast operator for intermediate results.
"""

from __future__ import annotations

from repro.core.dtype import DType
from repro.core.errors import DesignError
from repro.core.interval import Interval
from repro.signal.expr import Expr, as_expr

#: Shared 0/1 range of traced comparisons (read-only by convention).
_BOOL_IVAL = Interval(0.0, 1.0)

__all__ = ["select", "cast", "fmin", "fmax", "fabs", "clamp",
           "gt", "ge", "lt", "le"]


def _trace(ctx, opname, exprs):
    if ctx is None or ctx.tracer is None:
        return None
    nodes = [e.node if e.node is not None else ctx.tracer.const_node(e.fx)
             for e in exprs]
    return ctx.tracer.op_node(opname, nodes)


def _ctx_of(*exprs):
    for e in exprs:
        if e.ctx is not None:
            return e.ctx
    # All operands are literals (e.g. ``select(flag, 1.0, -1.0)``): fall
    # back to the active context so tracing still sees the operation.
    from repro.signal.context import current_context
    ctx = current_context()
    return ctx if ctx.tracer is not None else None


def select(cond, if_true, if_false):
    """Fixed-point-steered conditional expression.

    ``cond`` may be a plain bool (the result of a relational operator,
    which already compares fixed-point values) or a signal/expression
    whose fixed-point value is tested for being nonzero.
    """
    et = as_expr(if_true)
    ef = as_expr(if_false)
    if isinstance(cond, bool):
        taken = cond
        cond_exprs = ()
    else:
        ec = as_expr(cond)
        taken = ec.fx != 0.0
        cond_exprs = (ec,)
    picked = et if taken else ef
    ival = et.ival.union(ef.ival)
    ctx = _ctx_of(*cond_exprs, et, ef)
    node = _trace(ctx, "select", tuple(cond_exprs) + (et, ef))
    return Expr(picked.fx, picked.fl, ival, ctx, node)


def cast(value, dtype):
    """Quantize an intermediate expression through ``dtype``.

    The fixed-point value is quantized; the float reference passes
    through untouched; the range is clipped for saturating types.  No
    monititoring statistics are collected (casts are anonymous).
    """
    if not isinstance(dtype, DType):
        raise DesignError("cast target must be a DType, got %r" % (dtype,))
    e = as_expr(value)
    qfx = dtype.saturating.kernel(e.fx)[0] if dtype.msbspec != "wrap" \
        else dtype.quantize(e.fx)
    ival = e.ival
    if dtype.msbspec == "saturate":
        ival = ival.clip(dtype.range_interval())
    node = _trace(e.ctx, "cast%s" % dtype.spec(), (e,))
    return Expr(qfx, e.fl, ival, e.ctx, node)


def fmin(a, b):
    """Elementary minimum with proper range propagation."""
    ea = as_expr(a)
    eb = as_expr(b)
    ctx = _ctx_of(ea, eb)
    node = _trace(ctx, "min", (ea, eb))
    return Expr(min(ea.fx, eb.fx), min(ea.fl, eb.fl),
                ea.ival.minimum(eb.ival), ctx, node)


def fmax(a, b):
    """Elementary maximum with proper range propagation."""
    ea = as_expr(a)
    eb = as_expr(b)
    ctx = _ctx_of(ea, eb)
    node = _trace(ctx, "max", (ea, eb))
    return Expr(max(ea.fx, eb.fx), max(ea.fl, eb.fl),
                ea.ival.maximum(eb.ival), ctx, node)


def fabs(a):
    """Absolute value (alias for ``abs`` that works on plain floats too)."""
    return abs(as_expr(a))


def clamp(value, lo, hi):
    """Clamp ``value`` into ``[lo, hi]`` (saturation in the value domain)."""
    return fmin(fmax(value, lo), hi)


def _compare(opname, a, b, fn):
    """Traced comparison: 1.0/0.0 valued expression.

    Both simulation tracks take the *fixed-point* decision (uniform
    control, Section 4.2), so ``fl == fx`` by construction.  Unlike the
    relational dunders (which return plain bools), the result is an
    :class:`Expr`, so the decision survives into the traced signal flow
    graph — necessary for HDL generation of slicers and strobes.
    """
    ea = as_expr(a)
    eb = as_expr(b)
    v = 1.0 if fn(ea.fx, eb.fx) else 0.0
    ctx = _ctx_of(ea, eb)
    node = _trace(ctx, opname, (ea, eb))
    return Expr(v, v, _BOOL_IVAL, ctx, node)


def gt(a, b):
    """Traced ``a > b`` (1.0 when true, else 0.0)."""
    return _compare("gt", a, b, lambda x, y: x > y)


def ge(a, b):
    """Traced ``a >= b``."""
    return _compare("ge", a, b, lambda x, y: x >= y)


def lt(a, b):
    """Traced ``a < b``."""
    return _compare("lt", a, b, lambda x, y: x < y)


def le(a, b):
    """Traced ``a <= b``."""
    return _compare("le", a, b, lambda x, y: x <= y)
