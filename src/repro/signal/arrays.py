"""Signal arrays: the paper's ``sigarray`` and ``regarray``.

An array is a fixed-length collection of independently monitored signals
named ``base[i]``.  ``arr[i] = expr`` is a true Python ``__setitem__``,
so array element assignment reads exactly like the paper's C++ code::

    d = RegArray("d", N)
    d[0] = x
    for i in range(N - 1, 0, -1):
        d[i] = d[i - 1]
"""

from __future__ import annotations

from repro.core.errors import DesignError
from repro.signal.signal import Reg, Sig

__all__ = ["SigArray", "RegArray"]


class SigArray:
    """Array of :class:`~repro.signal.signal.Sig` elements."""

    _element_cls = Sig

    def __init__(self, name, n, dtype=None, ctx=None, init=0.0):
        n = int(n)
        if n < 1:
            raise DesignError("array %r must have at least one element" % name)
        self.name = str(name)
        self._sigs = [
            self._element_cls("%s[%d]" % (name, i), dtype=dtype, ctx=ctx,
                              init=init)
            for i in range(n)
        ]

    def _index(self, i):
        n = len(self._sigs)
        i = int(i)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("index %d out of range for array %r of length %d"
                             % (i, self.name, n))
        return i

    def __getitem__(self, i):
        # Exact-int fast path; _index keeps the error reporting (and the
        # rejection of slices / odd index types) for everything else.
        sigs = self._sigs
        if type(i) is int and -len(sigs) <= i < len(sigs):
            return sigs[i]
        return sigs[self._index(i)]

    def __setitem__(self, i, value):
        sigs = self._sigs
        if type(i) is int and -len(sigs) <= i < len(sigs):
            sigs[i].assign(value)
        else:
            sigs[self._index(i)].assign(value)

    def __len__(self):
        return len(self._sigs)

    def __iter__(self):
        return iter(self._sigs)

    def signals(self):
        return list(self._sigs)

    @property
    def dtype(self):
        return self._sigs[0].dtype

    def set_dtype(self, dtype):
        for s in self._sigs:
            s.set_dtype(dtype)
        return self

    def range(self, lo, hi):
        """Apply a range annotation to every element."""
        for s in self._sigs:
            s.range(lo, hi)
        return self

    def error(self, q):
        """Apply an error annotation to every element."""
        for s in self._sigs:
            s.error_spec(q)
        return self

    def values(self):
        """Current fixed-point values as a list."""
        return [s.fx for s in self._sigs]

    def __repr__(self):
        return "%s(%r, %d)" % (type(self).__name__, self.name,
                               len(self._sigs))


class RegArray(SigArray):
    """Array of :class:`~repro.signal.signal.Reg` elements."""

    _element_cls = Reg

    def set_init(self, values):
        """Set the power-on value of every element (scalar or sequence)."""
        try:
            seq = list(values)
        except TypeError:
            seq = [values] * len(self._sigs)
        if len(seq) != len(self._sigs):
            raise DesignError("init length %d != array length %d"
                              % (len(seq), len(self._sigs)))
        for s, v in zip(self._sigs, seq):
            s.set_init(v)
        return self
