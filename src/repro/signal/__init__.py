"""Signal layer: the embedded design language (sig/reg/arrays/ops)."""

from repro.signal.arrays import RegArray, SigArray
from repro.signal.context import DesignContext, current_context
from repro.signal.expr import Expr, as_expr
from repro.signal.ops import cast, clamp, fabs, fmax, fmin, select
from repro.signal.signal import Reg, Sig

__all__ = [
    "Sig",
    "Reg",
    "SigArray",
    "RegArray",
    "DesignContext",
    "current_context",
    "Expr",
    "as_expr",
    "select",
    "cast",
    "fmin",
    "fmax",
    "fabs",
    "clamp",
]
