"""Baseline refinement methods the paper compares against.

* :class:`SimulationBasedOptimizer` — pure simulation search in the
  style of Sung & Kum [1]: precise but needs one full simulation per
  probe (slow convergence on big designs).
* :class:`AnalyticalRefiner` — pure structural worst-case derivation in
  the style of Willems et al. [3]: instant but conservative.

The paper's contribution is the hybrid in :mod:`repro.refine`, which the
benchmarks compare against both of these.
"""

from repro.baselines.analytical import (AnalyticalRefiner, AnalyticalResult,
                                        propagate_error_bounds)
from repro.baselines.simulation_based import (SimulationBasedOptimizer,
                                              SimulationBasedResult)

__all__ = [
    "SimulationBasedOptimizer",
    "SimulationBasedResult",
    "AnalyticalRefiner",
    "AnalyticalResult",
    "propagate_error_bounds",
]
