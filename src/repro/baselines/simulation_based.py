"""Pure simulation-based wordlength optimization baseline.

Models the approach of Sung & Kum (1995), the paper's reference [1]: no
range propagation, no error statistics — only end-to-end simulations
with a quality criterion.  Wordlengths are found by search:

1. **MSB**: one long simulation records min/max per signal; MSB comes
   from the observed range plus a safety bit (no propagation guarantees,
   hence the guard).
2. **LSB**: starting from a uniform large fractional wordlength, each
   signal's ``f`` is reduced by bisection while the output SQNR stays
   above the requirement — one full simulation per probe.

The point of the baseline is the *cost*: the number of complete
simulations needed scales with the signal count (the paper's "long
simulations in the case of slow convergence"), whereas the hybrid flow
needs a handful of runs total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dtype import DType
from repro.refine.flow import Annotations
from repro.refine.monitors import collect
from repro.signal.context import DesignContext

__all__ = ["SimulationBasedOptimizer", "SimulationBasedResult"]


@dataclass
class SimulationBasedResult:
    types: dict
    n_simulations: int
    output_sqnr_db: float
    sqnr_target_db: float
    history: list = field(default_factory=list)

    def total_bits(self):
        return sum(dt.n for dt in self.types.values())


class SimulationBasedOptimizer:
    """Heuristic wordlength search driven only by output quality."""

    def __init__(self, design_factory, input_types, sqnr_target_db=35.0,
                 n_samples=4000, f_max=16, safety_bits=1, seed=1234):
        self.factory = design_factory
        self.input_types = dict(input_types)
        self.sqnr_target_db = float(sqnr_target_db)
        self.n_samples = int(n_samples)
        self.f_max = int(f_max)
        self.safety_bits = int(safety_bits)
        self.seed = seed
        self.n_simulations = 0

    # -- simulation probe ---------------------------------------------------

    def _simulate(self, dtypes):
        self.n_simulations += 1
        ctx = DesignContext("simopt-%d" % self.n_simulations,
                            seed=self.seed, overflow_action="record")
        with ctx:
            design = self.factory()
            design.build(ctx)
            Annotations(dtypes={**self.input_types, **dtypes}).apply(ctx)
            design.run(ctx, self.n_samples)
        records = collect(ctx)
        output = getattr(design, "output", None)
        sqnr = records[output].sqnr_db() if output else float("nan")
        return records, sqnr

    # -- search --------------------------------------------------------------

    def _msb_from_observation(self, records):
        """Observed-range MSB plus safety margin (no guarantees)."""
        msbs = {}
        for name, rec in records.items():
            if name in self.input_types:
                continue
            m = rec.stat_msb()
            if m is None:
                m = 0
            msbs[name] = m + self.safety_bits
        return msbs

    def _types_for(self, msbs, fracs):
        types = {}
        for name in msbs:
            f = max(fracs[name], -msbs[name])  # keep the word >= 1 bit
            types[name] = DType("%s_t" % name, msbs[name] + f + 1, f,
                                "tc", "saturate", "round")
        return types

    def run(self):
        """Execute the search; returns a :class:`SimulationBasedResult`."""
        # Pass 1: range-recording float simulation for the MSBs.
        records, _ = self._simulate({})
        msbs = self._msb_from_observation(records)
        names = sorted(msbs)

        history = []

        # Pass 2: uniform maximal fractional bits must meet the target.
        fracs = {name: self.f_max for name in names}
        _, best_sqnr = self._simulate(self._types_for(msbs, fracs))
        history.append(("uniform-f%d" % self.f_max, best_sqnr))

        # Pass 3: per-signal bisection on the fractional wordlength,
        # holding the others at their current values.
        for name in names:
            lo, hi = max(0, -msbs[name]), fracs[name]  # hi is known-good
            while lo < hi:
                mid = (lo + hi) // 2
                trial = dict(fracs)
                trial[name] = mid
                _, sqnr = self._simulate(self._types_for(msbs, trial))
                if sqnr >= self.sqnr_target_db:
                    hi = mid
                else:
                    lo = mid + 1
            fracs[name] = hi
            history.append((name, fracs[name]))

        # Final verification run.
        types = self._types_for(msbs, fracs)
        _, final_sqnr = self._simulate(types)
        return SimulationBasedResult(types, self.n_simulations, final_sqnr,
                                     self.sqnr_target_db, history)
