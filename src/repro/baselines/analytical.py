"""Pure analytical (worst-case) refinement baseline.

Models the interpolative/analytical approach of Willems et al. (1997),
the paper's reference [3]: wordlengths are derived from the *structure*
of the design alone.

* **MSB**: interval propagation over the traced signal flow graph seeded
  with the declared input ranges — sound but conservative, and feedback
  must be cut by declared ranges to avoid infinite results.
* **LSB**: worst-case error-bound propagation over the same graph: each
  quantized input contributes half an LSB of error; every operator maps
  operand error bounds to an output error bound using the operand ranges
  (``|d(a*b)| <= |a||db| + |b||da|``).  Each signal's LSB is then chosen
  so its own rounding error does not exceed the incoming worst-case
  error — the analytical analogue of the paper's ``2**l <= k_w sigma``.

No simulation values are used anywhere, which is precisely why the
result overestimates: the bench compares bits against the hybrid flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import word
from repro.core.dtype import DType
from repro.core.errors import RefinementError
from repro.core.interval import Interval
from repro.sfg.analyze import propagate_ranges
from repro.sfg.build import trace
from repro.signal.context import DesignContext

__all__ = ["AnalyticalRefiner", "AnalyticalResult", "propagate_error_bounds"]


@dataclass
class AnalyticalResult:
    types: dict
    ranges: dict
    error_bounds: dict
    exploded: list

    def total_bits(self):
        return sum(dt.n for dt in self.types.values())


def _op_error_bound(label, in_errs, in_ranges):
    """Worst-case |output error| from operand error bounds and ranges."""
    if any(math.isinf(e) for e in in_errs):
        return math.inf
    if label in ("add", "sub"):
        return in_errs[0] + in_errs[1]
    if label == "mul":
        def term(mag, err):
            if err == 0.0:
                return 0.0
            return mag * err
        a = in_ranges[0].max_abs
        b = in_ranges[1].max_abs
        return (term(a, in_errs[1]) + term(b, in_errs[0])
                + term(in_errs[0], in_errs[1]))
    if label == "div":
        num = in_ranges[0].max_abs
        den = in_ranges[1]
        dmin = min(abs(den.lo), abs(den.hi))
        if den.contains(0.0) or dmin == 0.0:
            return math.inf
        return (in_errs[0] + num * in_errs[1] / dmin) / dmin
    if label in ("neg", "abs"):
        return in_errs[0]
    if label in ("min", "max"):
        return max(in_errs[0], in_errs[1])
    if label in ("gt", "ge", "lt", "le"):
        # Uniform control: both tracks take the same branch, so the
        # decision itself carries no difference error.
        return 0.0
    if label == "select":
        return max(in_errs[-2], in_errs[-1])
    if label.startswith("shl"):
        return in_errs[0] * (2.0 ** int(label[3:]))
    if label.startswith("shr"):
        return in_errs[0] * (2.0 ** -int(label[3:]))
    if label.startswith("cast<"):
        return in_errs[0]  # the cast's own rounding is assigned later
    raise RefinementError("no error model for traced op %r" % label)


def propagate_error_bounds(sfg, ranges, input_errors, max_rounds=60,
                           growth_cut=1e6, node_ranges=None):
    """Fixpoint worst-case error propagation over the flow graph.

    ``input_errors`` maps input signal names to their absolute error
    bound (half an LSB of their quantization).  Feedback loops that keep
    amplifying the bound are cut at ``growth_cut`` and reported as
    infinite (the analytical method cannot bound them).
    """
    order = sfg.condensed_order()
    errs = {}
    for node in order:
        errs[node] = 0.0

    node_ranges = node_ranges or {}

    def node_range(node):
        if node in node_ranges and not node_ranges[node].is_empty:
            return node_ranges[node]
        if node.kind == "const":
            return Interval.point(node.payload)
        if node.kind in ("sig", "reg"):
            return ranges.get(node.label, Interval.full())
        return Interval.full()

    # Cache op input ranges through a value propagation identical to the
    # range analysis (ranges for signals come from the caller).
    op_ranges = {}
    for node in order:
        if node.kind == "op":
            op_ranges[node] = [node_range(p) for p in sfg.preds(node)]

    for _ in range(max_rounds):
        changed = False
        for node in order:
            if node.kind == "const":
                continue
            if node.kind == "op":
                ins = [errs[p] for p in sfg.preds(node)]
                new = _op_error_bound(node.label, ins, op_ranges[node])
            else:
                if node.label in input_errors:
                    new = float(input_errors[node.label])
                else:
                    preds = sfg.preds(node)
                    new = max((errs[p] for p in preds), default=0.0)
            if new > growth_cut:
                new = math.inf
            if new != errs[node]:
                errs[node] = new
                changed = True
        if not changed:
            break
    return {n.label: errs[n] for n in sfg.signal_nodes()}


class AnalyticalRefiner:
    """Derives fixed-point types from structure alone (no simulation)."""

    def __init__(self, design_factory, input_types, input_ranges,
                 declared_ranges=None, trace_samples=4, k_w=2.0,
                 max_frac_bits=24, seed=1234):
        self.factory = design_factory
        self.input_types = dict(input_types)
        self.input_ranges = dict(input_ranges)
        self.declared_ranges = dict(declared_ranges or {})
        self.trace_samples = trace_samples
        self.k_w = float(k_w)
        self.max_frac_bits = int(max_frac_bits)
        self.seed = seed

    def _capture_graph(self):
        ctx = DesignContext("analytical", seed=self.seed)
        with ctx:
            design = self.factory()
            design.build(ctx)
            with trace(ctx) as tracer:
                design.run(ctx, self.trace_samples)
        return tracer.sfg

    def run(self):
        sfg = self._capture_graph()
        analysis = propagate_ranges(
            sfg, input_ranges=self.input_ranges,
            forced_ranges=self.declared_ranges)

        # Worst-case input errors: half an LSB of each input type.
        input_errors = {name: 0.5 * dt.eps
                        for name, dt in self.input_types.items()}
        bounds = propagate_error_bounds(sfg, analysis.ranges, input_errors,
                                        node_ranges=analysis.node_ranges)

        types = {}
        for name, iv in analysis.ranges.items():
            if name in self.input_types:
                continue
            if iv.is_empty or not iv.is_finite:
                continue  # unresolvable analytically (reported as exploded)
            msb = word.required_msb(iv.lo, iv.hi)
            if msb is None:
                msb = 0
            bound = bounds.get(name, 0.0)
            if bound <= 0.0 or math.isinf(bound):
                f = self.max_frac_bits
            else:
                # Worst-case analogue of the paper's LSB rule: the
                # rounding step must stay below the incoming error bound.
                f = max(0, min(self.max_frac_bits,
                               -int(math.floor(math.log2(self.k_w * bound)))))
            f = max(f, -msb)
            types[name] = DType("%s_t" % name, msb + f + 1, f, "tc",
                                "saturate", "round")
        return AnalyticalResult(types, analysis.ranges, bounds,
                                analysis.exploded)
