"""Hardware cost estimation for refined designs.

The paper's refinement rules trade quality for hardware cost: fewer
bits mean narrower adders/multipliers, saturation logic is extra
hardware that case-a signals avoid, and floor-type rounding "leads to a
cheaper hardware implementation" than round-type (which needs an
increment adder per quantization point).  This module turns a traced
signal flow graph plus a type assignment into a datapath cost estimate
so those trade-offs can be quantified (see bench_floor_vs_round and the
k_w ablation).

The model is the standard first-order ASIC estimate:

* ripple adder / subtractor: ``n`` full-adder cells,
* array multiplier: ``n_a * n_b`` cells,
* mux / comparator / abs / negate: ``n`` cells,
* register: ``n`` flip-flops,
* round-type quantization: an ``n``-bit increment adder (floor: free),
* saturation: an ``n``-bit clamp (wrap: free).

Cell weights are configurable; the defaults count "unit cells" so
relative comparisons are technology-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import DesignError
from repro.hdl.netlist import build_netlist

__all__ = ["CostWeights", "CostReport", "estimate_cost"]


@dataclass(frozen=True)
class CostWeights:
    """Relative area of one bit of each resource."""

    adder: float = 1.0
    multiplier: float = 1.0
    mux: float = 0.6
    comparator: float = 0.8
    register: float = 1.2
    rounding: float = 1.0
    saturation: float = 1.5


@dataclass
class CostReport:
    """Bit counts per resource class plus the weighted total."""

    adder_bits: int = 0
    multiplier_cells: int = 0
    mux_bits: int = 0
    comparator_bits: int = 0
    register_bits: int = 0
    rounding_bits: int = 0
    saturation_bits: int = 0
    by_signal: dict = field(default_factory=dict)

    def total(self, weights=CostWeights()):
        return (weights.adder * self.adder_bits
                + weights.multiplier * self.multiplier_cells
                + weights.mux * self.mux_bits
                + weights.comparator * self.comparator_bits
                + weights.register * self.register_bits
                + weights.rounding * self.rounding_bits
                + weights.saturation * self.saturation_bits)

    def table(self):
        rows = [
            ("adder bits", self.adder_bits),
            ("multiplier cells", self.multiplier_cells),
            ("mux bits", self.mux_bits),
            ("comparator bits", self.comparator_bits),
            ("register bits", self.register_bits),
            ("rounding bits", self.rounding_bits),
            ("saturation bits", self.saturation_bits),
            ("weighted total", "%.1f" % self.total()),
        ]
        width = max(len(r[0]) for r in rows)
        return "\n".join("%-*s %s" % (width, k, v) for k, v in rows)


def _quantization_cost(src_dt, dst_dt):
    """(rounding_bits, saturation_bits) of one assignment."""
    rounding = 0
    if dst_dt.lsbspec == "round" and src_dt.f > dst_dt.f:
        rounding = dst_dt.n  # increment adder at the target width
    saturation = dst_dt.n if dst_dt.msbspec in ("saturate", "error") else 0
    return rounding, saturation


def estimate_cost(sfg, types, inputs=(), outputs=()):
    """Estimate datapath cost of ``sfg`` realized with ``types``."""
    netlist = build_netlist(sfg, types, inputs, outputs)
    report = CostReport()

    for op in netlist.ops.values():
        n = op.dtype.n
        label = op.label
        if label in ("add", "sub"):
            report.adder_bits += n
        elif label == "mul":
            widths = [netlist.dtype_of(p).n for p in op.operands]
            report.multiplier_cells += widths[0] * widths[1]
        elif label == "select":
            report.mux_bits += n
        elif label in ("gt", "ge", "lt", "le"):
            widths = [netlist.dtype_of(p).n for p in op.operands]
            report.comparator_bits += max(widths)
        elif label in ("neg", "abs", "min", "max"):
            report.adder_bits += n
        elif label.startswith(("shl", "shr", "cast<")):
            pass  # wiring only (casts are costed at the assignment)
        else:
            raise DesignError("no cost model for traced op %r" % label)

    for net in netlist.nets.values():
        per_signal = 0.0
        if net.is_register:
            report.register_bits += net.dtype.n
            per_signal += net.dtype.n
        if net.driver is not None and not net.is_input:
            src_dt = netlist.dtype_of(net.driver)
            rounding, saturation = _quantization_cost(src_dt, net.dtype)
            report.rounding_bits += rounding
            report.saturation_bits += saturation
            per_signal += rounding + saturation
        report.by_signal[net.name] = per_signal
    return report
