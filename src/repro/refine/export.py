"""Serialization of refinement results (JSON / CSV).

A refinement run is a design decision record: teams check it in next to
the RTL.  This module flattens a :class:`RefinementResult` into plain
dictionaries (JSON-ready) and CSV tables, and can restore the type map
from the JSON form.
"""

from __future__ import annotations

import csv
import io
import json
import math

from repro.core.dtype import DType

__all__ = ["types_to_dict", "types_from_dict", "result_to_dict",
           "result_to_json", "types_to_csv", "lsb_table_to_csv",
           "msb_table_to_csv"]


def _clean(v):
    """JSON-safe scalar (inf/nan become strings)."""
    if isinstance(v, float):
        if math.isnan(v):
            return "nan"
        if math.isinf(v):
            return "inf" if v > 0 else "-inf"
    return v


def types_to_dict(types):
    """``{signal: {"spec": "<n,f,...>", ...}}`` from a type map."""
    out = {}
    for name, dt in types.items():
        out[name] = {
            "spec": dt.spec(),
            "n": dt.n,
            "f": dt.f,
            "vtype": dt.vtype,
            "msbspec": dt.msbspec,
            "lsbspec": dt.lsbspec,
            "min": dt.min_value,
            "max": dt.max_value,
        }
    return out


def types_from_dict(data):
    """Inverse of :func:`types_to_dict` (only the spec is needed)."""
    return {name: DType.from_spec(entry["spec"], name="%s_t" % name)
            for name, entry in data.items()}


def _msb_decision_dict(d):
    return {
        "stat_msb": _clean(d.stat_msb),
        "prop_msb": _clean(d.prop_msb),
        "msb": _clean(d.msb),
        "mode": d.mode,
        "case": d.case,
        "guard_msb": _clean(d.guard_msb),
        "note": d.note,
    }


def _lsb_decision_dict(d):
    return {
        "count": d.count,
        "max_abs": _clean(d.max_abs),
        "mean": _clean(d.mean),
        "std": _clean(d.std),
        "lsb": d.lsb,
        "mode": d.mode,
        "divergent": d.divergent,
        "note": d.note,
    }


def result_to_dict(result):
    """Flatten a :class:`RefinementResult` to a JSON-ready dict."""
    out = {
        "msb": {
            "iterations": result.msb.n_iterations,
            "resolved": result.msb.resolved,
            "annotations": {k: list(v)
                            for k, v in result.msb.annotations.items()},
            "decisions": {name: _msb_decision_dict(d)
                          for name, d in result.msb.final.decisions.items()},
        },
        "lsb": {
            "iterations": result.lsb.n_iterations,
            "resolved": result.lsb.resolved,
            "annotations": dict(result.lsb.annotations),
            "decisions": {name: _lsb_decision_dict(d)
                          for name, d in result.lsb.final.decisions.items()},
        },
        "types": types_to_dict(result.types),
        "verification": {
            "output": result.verification.output,
            "output_sqnr_db": _clean(result.verification.output_sqnr_db),
            "total_overflows": result.verification.total_overflows,
            "overflow_signals": dict(result.verification.overflow_signals),
            "wrap_events": dict(result.verification.wrap_events),
        },
        "baseline_sqnr_db": _clean(result.baseline_sqnr_db),
        "total_bits": result.total_bits(),
    }
    fallbacks = getattr(result, "fallbacks", None)
    if fallbacks:
        out["fallbacks"] = types_to_dict(fallbacks)
    diagnostics = getattr(result, "diagnostics", None)
    if diagnostics is not None and len(diagnostics):
        out["diagnostics"] = diagnostics.to_dict()
    return out


def result_to_json(result, indent=2):
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def _csv_text(headers, rows):
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    writer.writerows(rows)
    return buf.getvalue()


def types_to_csv(types):
    """CSV of the synthesized type map."""
    rows = [(name, dt.spec(), dt.n, dt.f, dt.msb, dt.vtype, dt.msbspec,
             dt.lsbspec) for name, dt in types.items()]
    return _csv_text(("signal", "spec", "n", "f", "msb", "vtype",
                      "msbspec", "lsbspec"), rows)


def msb_table_to_csv(records, decisions):
    """CSV form of the Table-1-style MSB analysis."""
    rows = []
    for name, rec in records.items():
        d = decisions.get(name)
        if d is None:
            continue
        rows.append((name, rec.n_assign, _clean(rec.stat_min),
                     _clean(rec.stat_max), _clean(d.stat_msb),
                     _clean(d.prop_msb), _clean(d.msb), d.mode, d.case))
    return _csv_text(("signal", "n_assign", "stat_min", "stat_max",
                      "stat_msb", "prop_msb", "msb", "mode", "case"), rows)


def lsb_table_to_csv(records, decisions):
    """CSV form of the Table-2-style LSB analysis."""
    rows = []
    for name in records:
        d = decisions.get(name)
        if d is None:
            continue
        rows.append((name, d.count, _clean(d.max_abs), _clean(d.mean),
                     _clean(d.std), d.lsb, d.mode, d.divergent))
    return _csv_text(("signal", "count", "max_abs", "mean", "std", "lsb",
                      "mode", "divergent"), rows)
