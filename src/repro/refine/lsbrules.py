"""LSB refinement rules (paper Section 5.2).

The produced difference-error statistics (mean, std, max-abs) gathered by
the coupled float/fixed simulation bound the useful LSB precision of each
signal: quantization finer than the noise already sitting on the signal
buys nothing.  The paper's rule is

    ``2**l <= k_w * sigma``

with the empirical constant ``k_w`` in ``[1, 4]`` (the smaller, the more
conservative the LSB).  The LSB position (fractional bit count) is then
``f = -l``.

Error-free signals (sigma == max == 0, e.g. a slicer output) fall back to
the finest value grid observed during simulation; signals carrying only a
constant bias use the rms instead of the standard deviation.

Divergence of the coupled simulation on sensitive feedback signals is
detected two ways (both reported):

* *ratio test* — the max-abs error is a sizable fraction of the signal's
  own rms (wrap-around/limit-cycle style blowup);
* *growth test* — the error std keeps growing between the first and
  second half of the run (random-walk accumulation), which makes the
  statistics non-stationary and therefore meaningless.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import RefinementError

__all__ = ["LsbPolicy", "LsbDecision", "decide_lsb", "detect_divergence",
           "audit_precision"]


@dataclass(frozen=True)
class LsbPolicy:
    """Tunable knobs of the LSB rules."""

    #: the paper's empirical constant; optimal in [1, 4].
    k_w: float = 2.0
    #: hard cap on fractional bits (also the fallback for signals whose
    #: useful precision could not be bounded).
    max_frac_bits: int = 24
    #: round->floor retyping allowed when the mean shift is acceptable.
    allow_floor: bool = False
    #: ratio test threshold: max_abs(err) > ratio * rms(signal).
    divergence_ratio: float = 0.3
    #: growth test threshold: sigma(full run) > factor * sigma(half run).
    divergence_growth: float = 1.30
    #: minimum samples before divergence tests fire.
    divergence_min_count: int = 64

    def __post_init__(self):
        if self.k_w <= 0:
            raise RefinementError("k_w must be positive")
        if self.max_frac_bits < 0:
            raise RefinementError("max_frac_bits must be >= 0")


@dataclass(frozen=True)
class LsbDecision:
    """Outcome of the LSB rule for one signal."""

    name: str
    count: int
    max_abs: float
    mean: float
    std: float
    lsb: object          # fractional bits (int) or None (no data)
    mode: str            # 'round' or 'floor'
    divergent: bool = False
    note: str = ""

    @property
    def needs_error_annotation(self):
        return self.divergent


def lsb_from_sigma(sigma, k_w, max_frac_bits):
    """Paper rule: largest LSB weight ``2**l <= k_w * sigma``; ``f = -l``."""
    if sigma <= 0.0:
        return max_frac_bits
    l = math.floor(math.log2(k_w * sigma))
    return max(0, min(max_frac_bits, -l))


def decide_lsb(record, policy=LsbPolicy(), divergent=False):
    """Apply the LSB refinement rule to one signal record."""
    ep = record.err_produced
    mode = "floor" if policy.allow_floor else "round"

    if ep.count == 0:
        return LsbDecision(record.name, 0, 0.0, 0.0, 0.0, None, mode,
                           note="no assignments; no LSB information")

    if divergent:
        return LsbDecision(record.name, ep.count, ep.max_abs, ep.mean,
                           ep.std, None, mode, divergent=True,
                           note="error statistics diverged; add error() "
                                "and reiterate")

    if ep.std == 0.0:
        if ep.max_abs == 0.0:
            # Error-free signal: precision is bounded by the value grid
            # actually exercised (a +/-1 slicer output needs 0 bits).
            f = min(record.frac_bits, policy.max_frac_bits)
            return LsbDecision(record.name, ep.count, 0.0, 0.0, 0.0, f,
                               mode, note="error-free; value-grid bound")
        # Pure bias (constant error): use the rms as the noise scale.
        f = lsb_from_sigma(ep.rms, policy.k_w, policy.max_frac_bits)
        return LsbDecision(record.name, ep.count, ep.max_abs, ep.mean,
                           0.0, f, mode, note="constant bias; rms-based")

    f = lsb_from_sigma(ep.std, policy.k_w, policy.max_frac_bits)
    return LsbDecision(record.name, ep.count, ep.max_abs, ep.mean, ep.std,
                       f, mode)


def detect_divergence(record, policy=LsbPolicy(), half_snapshot=None):
    """Return (divergent, reason) for one signal.

    ``half_snapshot`` is the ``(count, mean, std, max_abs)`` tuple of the
    produced-error statistic captured at the midpoint of the run (see
    :meth:`DesignContext.snapshot_error_stats`); without it only the
    ratio test runs.
    """
    ep = record.err_produced
    if ep.count < policy.divergence_min_count:
        return False, ""
    if record.forced_error is not None:
        # Already annotated: the injected error is stationary by design.
        return False, ""

    if record.val_rms > 0.0 and ep.max_abs > policy.divergence_ratio * record.val_rms:
        return True, ("max error %.3g is %.0f%% of signal rms %.3g"
                      % (ep.max_abs, 100 * ep.max_abs / record.val_rms,
                         record.val_rms))

    if half_snapshot is not None:
        half_count, _mean, half_std, _ = half_snapshot
        if (half_count >= policy.divergence_min_count // 2
                and half_std > 0.0
                and ep.std > policy.divergence_growth * half_std):
            return True, ("error std grew %.2fx between run halves "
                          "(non-stationary)" % (ep.std / half_std))
    return False, ""


def audit_precision(record, tolerance=1.05):
    """Classify consumed vs produced precision (paper Section 5.2).

    Returns one of:

    * ``"float"``     — consumed equals produced: no quantization here,
    * ``"lossless"``  — quantization present but below the incoming noise,
    * ``"loss"``      — produced error exceeds consumed error: this
      signal's quantization loses precision (may be intentional),
    * ``"feedback-gain"`` — produced error *smaller* than consumed on an
      ``error()``-annotated signal: precision loss detected in the
      feedback path (paper: potential instability),
    * ``"no-data"``.
    """
    ec = record.err_consumed
    ep = record.err_produced
    if ep.count == 0:
        return "no-data"
    if record.forced_error is not None and ep.rms < ec.rms / tolerance:
        return "feedback-gain"
    if ep.rms <= ec.rms * tolerance and ep.rms >= ec.rms / tolerance:
        if record.dtype is None and record.forced_error is None:
            return "float"
        return "lossless"
    if ep.rms > ec.rms * tolerance:
        return "loss"
    return "lossless"
