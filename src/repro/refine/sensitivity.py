"""Per-signal wordlength sensitivity analysis.

Paper Figure 4 has a feedback arrow: when the verified performance is
not satisfactory, the partial type definition "must then be revised".
This module answers *which* signal to revise: it perturbs each
synthesized type by +/- one fractional bit, re-simulates, and reports
the output-quality gradient and the hardware-cost gradient per signal —
the designer (or an optimizer) then spends bits where they buy the most
dB per cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.runner import SimConfig, run_simulations
from repro.refine.flow import Annotations
from repro.refine.monitors import collect
from repro.signal.context import DesignContext

__all__ = ["SignalSensitivity", "SensitivityReport", "analyze_sensitivity"]


@dataclass(frozen=True)
class SignalSensitivity:
    """Effect of +/- one fractional bit on one signal."""

    name: str
    base_f: int
    sqnr_base_db: float
    sqnr_plus_db: float      # one more fractional bit
    sqnr_minus_db: float     # one fewer fractional bit

    @property
    def gain_db_per_bit(self):
        """Quality bought by adding one bit here."""
        return self.sqnr_plus_db - self.sqnr_base_db

    @property
    def loss_db_per_bit(self):
        """Quality lost by removing one bit here."""
        return self.sqnr_base_db - self.sqnr_minus_db


@dataclass
class SensitivityReport:
    output: str
    base_sqnr_db: float
    entries: list = field(default_factory=list)

    def most_sensitive(self, k=5):
        """Signals whose bit removal hurts most (revise these last)."""
        return sorted(self.entries, key=lambda e: -e.loss_db_per_bit)[:k]

    def least_sensitive(self, k=5):
        """Signals whose bit removal is nearly free (shrink these)."""
        return sorted(self.entries, key=lambda e: e.loss_db_per_bit)[:k]

    def table(self):
        lines = ["signal sensitivity (output %r, base SQNR %.2f dB)"
                 % (self.output, self.base_sqnr_db),
                 "%-16s %4s %10s %10s" % ("signal", "f", "+1 bit", "-1 bit")]
        for e in sorted(self.entries, key=lambda e: -e.loss_db_per_bit):
            lines.append("%-16s %4d %+9.2f %+9.2f"
                         % (e.name, e.base_f, e.gain_db_per_bit,
                            -e.loss_db_per_bit))
        return "\n".join(lines)


def _run_once(design_factory, dtypes, n_samples, seed):
    ctx = DesignContext("sens", seed=seed, overflow_action="record")
    with ctx:
        design = design_factory()
        design.build(ctx)
        Annotations(dtypes=dtypes).apply(ctx)
        design.run(ctx, n_samples)
    records = collect(ctx)
    output = getattr(design, "output", None)
    return output, records[output].sqnr_db()


def analyze_sensitivity(design_factory, types, input_types, signals=None,
                        n_samples=2000, seed=1234, workers=None,
                        cache=None, journal=None, engine=None):
    """Measure the output-SQNR effect of +/-1 fractional bit per signal.

    ``types`` is the synthesized type map (from the flow), ``input_types``
    the fixed input formats.  ``signals`` restricts the sweep (defaults to
    every synthesized signal).  Cost: two simulations per signal plus one
    baseline; the whole batch is fanned out through
    :func:`repro.parallel.run_simulations` (``workers`` / ``cache``
    forwarded), so wall-clock scales with the core count while the
    numbers stay bit-identical to a serial sweep.  ``journal`` (a
    :class:`repro.robust.recovery.Journal` or path) journals each probe
    as it completes and replays completed probes bit-exactly when the
    sweep is re-run after a crash.  ``engine="compiled"`` batches the
    whole +/-1-bit sweep — one dtype assignment per lane — through the
    compiled engine (:mod:`repro.compile`), with the same numbers.
    """
    base_types = {**types, **input_types}
    names = list(signals) if signals is not None else list(types)

    def cfg(dtypes):
        return SimConfig(label="sens", dtypes=dtypes, n_samples=n_samples,
                         seed=seed)

    configs = [cfg(base_types)]
    plan = []  # (name, base_f, has_minus)
    for name in names:
        dt = types[name]
        plus = dict(base_types)
        plus[name] = dt.with_(n=dt.n + 1, f=dt.f + 1)
        configs.append(cfg(plus))
        has_minus = dt.f > 0 and dt.n > 1
        if has_minus:
            minus = dict(base_types)
            minus[name] = dt.with_(n=dt.n - 1, f=dt.f - 1)
            configs.append(cfg(minus))
        plan.append((name, dt.f, has_minus))

    outcomes = run_simulations(design_factory, configs, workers=workers,
                               cache=cache, journal=journal, engine=engine)
    base = outcomes[0]
    output = base.output
    base_sqnr = base.records[output].sqnr_db()
    entries = []
    idx = 1
    for name, base_f, has_minus in plan:
        sqnr_plus = outcomes[idx].records[output].sqnr_db()
        idx += 1
        if has_minus:
            sqnr_minus = outcomes[idx].records[output].sqnr_db()
            idx += 1
        else:
            sqnr_minus = base_sqnr
        entries.append(SignalSensitivity(name, base_f, base_sqnr, sqnr_plus,
                                         sqnr_minus))
    return SensitivityReport(output, base_sqnr, entries)
