"""Greedy wordlength optimization on top of a refined type map.

The flow's LSB rule is per-signal and local; once a full type map
exists, global bit allocation can still be improved: remove fractional
bits where the output barely notices, add them where quality is
bottlenecked.  This optimizer implements the classic greedy exchange:

1. **Reclaim**: repeatedly drop one fractional bit from the signal whose
   removal costs the least output SQNR, as long as the quality stays
   above the target.
2. **Repair** (optional): if the starting point is already below target,
   first add bits where they buy the most.

Each probe is one simulation, so the cost is comparable to the
simulation-based baseline — but starting from the refined types instead
of a uniform guess typically converges in a handful of moves (this is
the "performance not satisfactory" reiteration of paper Fig. 4, made
automatic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.runner import SimConfig, run_simulations
from repro.refine.flow import Annotations
from repro.refine.monitors import collect
from repro.signal.context import DesignContext

__all__ = ["OptimizeResult", "optimize_wordlengths"]


@dataclass
class OptimizeResult:
    types: dict
    sqnr_db: float
    target_db: float
    n_simulations: int
    moves: list = field(default_factory=list)   # (op, signal, f, sqnr)

    def bits_saved(self, original_types):
        return (sum(dt.n for dt in original_types.values())
                - sum(dt.n for dt in self.types.values()))


def _sqnr(design_factory, dtypes, n_samples, seed):
    ctx = DesignContext("wlopt", seed=seed, overflow_action="record")
    with ctx:
        design = design_factory()
        design.build(ctx)
        Annotations(dtypes=dtypes).apply(ctx)
        design.run(ctx, n_samples)
    records = collect(ctx)
    return records[design.output].sqnr_db()


def optimize_wordlengths(design_factory, types, input_types, target_db,
                         n_samples=2000, seed=1234, max_moves=64,
                         signals=None, workers=None, cache=None,
                         journal=None, engine=None):
    """Greedy bit reclaim/repair against an output SQNR target.

    ``types``: the synthesized map to optimize (not mutated);
    ``input_types``: fixed input formats; ``target_db``: the quality
    floor.  Returns an :class:`OptimizeResult` whose types meet the
    target (or the best-achievable map if even adding bits cannot).

    Each greedy iteration probes every candidate signal; the probes of
    one iteration are independent and run as one
    :func:`repro.parallel.run_simulations` batch (``workers`` /
    ``cache`` forwarded).  With a shared :class:`~repro.parallel.SimCache`
    the optimizer also skips any type map it has already measured.

    ``journal`` (a :class:`repro.robust.recovery.Journal` or path) makes
    the search *resumable*: every probe outcome is journaled as it
    completes, and because the greedy search is deterministic — same
    inputs, same probe sequence — re-running the call after a crash
    replays the already-measured probes from disk and continues from the
    first missing one, converging to a bit-identical result.
    ``engine="compiled"`` runs each probe batch through the compiled
    engine — every candidate type map becomes one lane of a vectorized
    batch — producing the same greedy trajectory bit-for-bit.
    """
    types = dict(types)
    names = sorted(signals if signals is not None else types)
    sims = 0
    moves = []
    if journal is not None and not hasattr(journal, "append"):
        from repro.robust.recovery import Journal
        journal = Journal(journal)

    def probe_batch(trials):
        """SQNR of several candidate type maps, one fan-out batch."""
        nonlocal sims
        sims += len(trials)
        configs = [SimConfig(label="wlopt",
                             dtypes={**trial, **input_types},
                             n_samples=n_samples, seed=seed)
                   for trial in trials]
        outcomes = run_simulations(design_factory, configs,
                                   workers=workers, cache=cache,
                                   journal=journal, engine=engine)
        return [o.records[o.output].sqnr_db() for o in outcomes]

    current_sqnr = probe_batch([types])[0]

    def grown(name):
        dt = types[name]
        trial = dict(types)
        trial[name] = dt.with_(n=dt.n + 1, f=dt.f + 1)
        return trial

    def shrunk(name):
        dt = types[name]
        trial = dict(types)
        trial[name] = dt.with_(n=dt.n - 1, f=dt.f - 1)
        return trial

    # Repair phase: grow the most effective signal until on target.
    while current_sqnr < target_db and len(moves) < max_moves:
        sqnrs = probe_batch([grown(name) for name in names])
        best = None
        for name, sqnr in zip(names, sqnrs):
            if best is None or sqnr > best[1]:
                best = (name, sqnr)
        name, sqnr = best
        if sqnr <= current_sqnr + 1e-9:
            break  # no signal helps: give up repairing
        dt = types[name]
        types[name] = dt.with_(n=dt.n + 1, f=dt.f + 1)
        current_sqnr = sqnr
        moves.append(("add", name, types[name].f, sqnr))

    # Reclaim phase: shrink the cheapest signal while above target.
    improved = True
    while improved and len(moves) < max_moves:
        improved = False
        shrinkable = [name for name in names
                      if types[name].f > 0 and types[name].n > 1]
        sqnrs = probe_batch([shrunk(name) for name in shrinkable])
        best = None
        for name, sqnr in zip(shrinkable, sqnrs):
            if sqnr >= target_db and (best is None or sqnr > best[1]):
                best = (name, sqnr)
        if best is not None:
            name, sqnr = best
            dt = types[name]
            types[name] = dt.with_(n=dt.n - 1, f=dt.f - 1)
            current_sqnr = sqnr
            moves.append(("drop", name, types[name].f, sqnr))
            improved = True

    return OptimizeResult(types, current_sqnr, target_db, sims, moves)
