"""Tabular reports mirroring the paper's Table 1 (MSB) and Table 2 (LSB)."""

from __future__ import annotations

import math

__all__ = ["format_msb_table", "format_lsb_table", "format_types_table",
           "format_diagnostics_table", "format_lint_table", "format_table"]


def format_table(headers, rows, title=None):
    """Plain fixed-width ASCII table."""
    cols = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [
        [str(h)] for h in headers]
    widths = [max(len(cell) for cell in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(map(str, headers),
                                                       widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt_msb(m):
    if m is None:
        return "-"
    if isinstance(m, float) and math.isinf(m):
        return "?"       # the paper prints '?' for exploded propagation
    return "%d" % m


def _fmt_val(v, nd=4):
    if v is None or (isinstance(v, float) and math.isnan(v)):
        return "-"
    if isinstance(v, float) and math.isinf(v):
        return "inf" if v > 0 else "-inf"
    return "%.*g" % (nd, v)


def _fmt_sci(v):
    if v is None or (isinstance(v, float) and math.isnan(v)):
        return "-"
    return "%.2e" % v


def format_msb_table(records, decisions, title="MSB analysis"):
    """Paper Table 1: name, #n, stat min/max/msb, prop min/max/msb, MSB.

    ``records`` maps name -> SignalRecord; ``decisions`` maps name ->
    MsbDecision.  Rows follow declaration order of ``records``.
    """
    headers = ["name", "#n", "min", "max", "msb",
               "prop.min", "prop.max", "prop.msb", "MSB", "mode", "case"]
    rows = []
    for name, rec in records.items():
        dec = decisions.get(name)
        if dec is None:
            continue
        prop = rec.prop
        exploded = dec.case == "explosion"
        rows.append([
            name,
            rec.n_assign,
            _fmt_val(rec.stat_min),
            _fmt_val(rec.stat_max),
            _fmt_msb(dec.stat_msb),
            "?" if exploded else _fmt_val(None if prop.is_empty else prop.lo),
            "?" if exploded else _fmt_val(None if prop.is_empty else prop.hi),
            "?" if exploded else _fmt_msb(dec.prop_msb),
            _fmt_msb(dec.msb),
            dec.mode[:3],
            dec.case,
        ])
    return format_table(headers, rows, title=title)


def format_lsb_table(records, decisions, title="LSB analysis"):
    """Paper Table 2: name, #n, max|e|, mean, std, LSB."""
    headers = ["name", "#n", "max|e|", "mean", "sigma", "LSB", "mode"]
    rows = []
    for name, rec in records.items():
        dec = decisions.get(name)
        if dec is None:
            continue
        lsb = "?" if dec.divergent else ("-" if dec.lsb is None else dec.lsb)
        rows.append([
            name,
            dec.count,
            _fmt_sci(dec.max_abs),
            _fmt_sci(dec.mean),
            _fmt_sci(dec.std),
            lsb,
            dec.mode[:2],
        ])
    return format_table(headers, rows, title=title)


def format_diagnostics_table(diagnostics, title="Diagnostics"):
    """Event table of a run's :class:`~repro.robust.diagnostics.Diagnostics`.

    Accepts anything iterable over objects with ``severity``, ``category``,
    ``signal`` and ``message`` attributes.
    """
    headers = ["severity", "category", "signal", "message"]
    rows = [[e.severity, e.category,
             "-" if e.signal is None else e.signal, e.message]
            for e in diagnostics]
    return format_table(headers, rows, title=title)


def format_lint_table(findings, title="Lint findings"):
    """Static-analysis findings of :mod:`repro.lint`, one row each."""
    headers = ["rule", "severity", "signal", "message", "fix"]
    rows = [[f.rule_id, f.severity,
             "-" if f.signal is None else f.signal, f.message,
             f.hint or "-"]
            for f in findings]
    if not rows:
        return "%s\n(no findings)" % title if title else "(no findings)"
    return format_table(headers, rows, title=title)


def format_types_table(types, title="Synthesized fixed-point types"):
    """Final type assignment: name, <n,f,...>, range."""
    headers = ["name", "spec", "n", "f", "msb", "min", "max"]
    rows = []
    for name, dt in types.items():
        rows.append([name, dt.spec(), dt.n, dt.f, dt.msb,
                     _fmt_val(dt.min_value), _fmt_val(dt.max_value)])
    return format_table(headers, rows, title=title)
