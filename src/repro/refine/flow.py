"""The iterative refinement flow (paper Figure 4).

Input: a floating-point design description plus a *partial type
definition* (typically the input quantization, known from the AD
converter / SNR scenario).  The flow then:

1. **MSB phase** — simulates with range monitoring (statistic-based and
   quasi-analytical in the same run) and applies the MSB rules.  Signals
   whose range propagation exploded get a ``range()`` annotation — taken
   from ``user_ranges`` when provided (the paper's knowledge-based
   ``b.range(-0.2, 0.2)``), derived from the simulated range otherwise —
   and the simulation reiterates until no explosion remains.
2. **LSB phase** — simulates the coupled float/fixed pair with the input
   types applied and derives every LSB from the produced-error
   statistics.  Signals whose error statistics diverge (sensitive
   feedback) get an ``error()`` annotation and the simulation reiterates.
3. **Type synthesis** — combines MSB position/mode and LSB position/mode
   into full :class:`DType` definitions.
4. **Verification** — re-simulates with every signal quantized; reports
   per-signal SQNR, overflow counts and the performance cost of the
   refinement versus the inputs-only-quantized baseline.

Designs implement the small :class:`Design` protocol; each phase builds
a *fresh* design instance so statistics and state never leak between
iterations (stimuli must be internally seeded for reproducibility).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dtype import DType
from repro.core.errors import DesignError, RefinementError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.refine.lsbrules import LsbPolicy, decide_lsb, detect_divergence
from repro.refine.monitors import collect
from repro.refine.msbrules import MsbPolicy, decide_msb
from repro.refine.report import (format_lsb_table, format_msb_table,
                                 format_types_table)
from repro.signal.context import DesignContext

__all__ = ["Design", "Annotations", "FlowConfig", "RefinementFlow",
           "MsbIteration", "LsbIteration", "PhaseResult",
           "VerificationResult", "RefinementResult"]


class Design:
    """Protocol for designs-under-refinement.

    Subclasses declare ``inputs`` (names of input signals) and optionally
    ``output`` (name of the primary output used for SQNR reporting), then
    implement :meth:`build` and :meth:`run`.  ``run`` may be called
    multiple times and must continue where it left off (the flow splits
    runs in half for the divergence growth test).
    """

    name = "design"
    inputs = ()
    output = None

    def build(self, ctx):
        raise NotImplementedError

    def run(self, ctx, n_samples):
        raise NotImplementedError


def expand_names(names, all_names):
    """Expand base names to array elements (``d`` -> ``d[0]``, ...).

    >>> sorted(expand_names({"d", "x"}, ["x", "d[0]", "d[1]", "y"]))
    ['d[0]', 'd[1]', 'x']
    >>> expand_names({"missing"}, ["x"])
    set()
    """
    out = set()
    for name in names:
        if name in all_names:
            out.add(name)
            continue
        prefix = name + "["
        matched = [n for n in all_names if n.startswith(prefix)]
        out.update(matched)
    return out


@dataclass
class Annotations:
    """Per-signal annotations applied after :meth:`Design.build`.

    Names may address whole arrays (``"d"`` covers ``d[0]``..``d[N-1]``).

    >>> from repro.core.dtype import DType
    >>> from repro.signal import DesignContext, Sig
    >>> with DesignContext("doc") as ctx:
    ...     y = Sig("y")
    ...     Annotations(dtypes={"y": DType("T", 8, 5)},
    ...                 ranges={"y": (-1, 1)}).apply(ctx)
    >>> y.dtype.spec()
    '<8,5,tc,sa,ro>'
    """

    dtypes: dict = field(default_factory=dict)
    ranges: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)

    def _targets(self, ctx, name):
        if name in ctx:
            return [ctx.get(name)]
        prefix = name + "["
        matches = [s for s in ctx.signals() if s.name.startswith(prefix)]
        if not matches:
            raise DesignError("annotation target %r matches no signal"
                              % name)
        return matches

    def apply(self, ctx):
        for name, dt in self.dtypes.items():
            for s in self._targets(ctx, name):
                s.set_dtype(dt)
        for name, bounds in self.ranges.items():
            lo, hi = bounds
            for s in self._targets(ctx, name):
                s.range(lo, hi)
        for name, q in self.errors.items():
            for s in self._targets(ctx, name):
                s.error_spec(q)


@dataclass
class FlowConfig:
    """Knobs of the refinement flow."""

    n_samples: int = 4000
    max_msb_iterations: int = 4
    max_lsb_iterations: int = 4
    msb_policy: MsbPolicy = field(default_factory=MsbPolicy)
    lsb_policy: LsbPolicy = field(default_factory=LsbPolicy)
    #: derive range annotations from the simulated range when the user
    #: did not provide one for an exploded signal.
    auto_range: bool = True
    auto_range_margin: float = 2.0
    #: derive error annotations automatically on divergence.
    auto_error: bool = True
    auto_error_extra_bits: int = 2
    seed: int = 1234
    #: non-finite-value guard applied to every flow simulation ("raise",
    #: "record" or "sanitize"); see repro.robust.guards.
    guard_action: str = "raise"
    guard_replacement: str = "hold"
    #: simulation watchdog budgets (None disables the respective check).
    max_watchdog_cycles: int = None
    max_wall_seconds: float = None
    #: escalation ladder for run(strict=False); None uses the default
    #: repro.robust.retry.EscalationPolicy.
    escalation: object = None
    #: run the static linter (repro.lint) before the MSB phase and surface
    #: its findings as "lint"-category diagnostics of run().
    lint_design: bool = True
    #: samples to run under trace for the lint pass.
    lint_samples: int = 32
    #: discharge bounded proofs (repro.verify) before the MSB phase and
    #: surface the verdicts as DG210-DG212 diagnostics of run().  Off by
    #: default: proofs need declared input ranges and typed state, and
    #: cost real solver/enumeration time.
    verify_design: bool = False
    #: unrolling horizon for the verify pre-flight.
    verify_k: int = 3
    #: proof backend for the verify pre-flight ("auto", "enumeration",
    #: "z3"); see repro.verify.backends.resolve_backend.
    verify_backend: str = "auto"


@dataclass
class MsbIteration:
    index: int
    records: dict
    decisions: dict
    exploded: list
    added_ranges: dict

    def table(self):
        return format_msb_table(self.records, self.decisions,
                                title="MSB analysis — iteration %d"
                                      % self.index)


@dataclass
class LsbIteration:
    index: int
    records: dict
    decisions: dict
    divergent: dict
    added_errors: dict

    def table(self):
        return format_lsb_table(self.records, self.decisions,
                                title="LSB analysis — iteration %d"
                                      % self.index)


@dataclass
class PhaseResult:
    iterations: list
    annotations: dict     # accumulated range (MSB) or error (LSB) notes
    resolved: bool

    @property
    def n_iterations(self):
        return len(self.iterations)

    @property
    def final(self):
        return self.iterations[-1]


@dataclass
class VerificationResult:
    records: dict
    output: str
    output_sqnr_db: float
    total_overflows: int
    overflow_signals: dict
    #: modulo wraps of wrap-mode types (intended behaviour, not errors)
    wrap_events: dict = field(default_factory=dict)


@dataclass
class RefinementResult:
    msb: PhaseResult
    lsb: PhaseResult
    types: dict
    verification: VerificationResult
    baseline_sqnr_db: float    # inputs-only quantization (pre-refinement)
    #: structured per-run events (repro.robust.diagnostics.Diagnostics);
    #: populated by run(), None when phases were driven by hand.
    diagnostics: object = None
    #: conservative fallback types synthesized in graceful mode (subset
    #: of ``types``), keyed by signal name.
    fallbacks: dict = field(default_factory=dict)

    def types_table(self):
        return format_types_table(self.types)

    def total_bits(self):
        return sum(dt.n for dt in self.types.values())

    def summary(self):
        lines = [
            "MSB phase: %d iteration(s), %d range annotation(s)%s"
            % (self.msb.n_iterations, len(self.msb.annotations),
               "" if self.msb.resolved else " [UNRESOLVED]"),
            "LSB phase: %d iteration(s), %d error annotation(s)%s"
            % (self.lsb.n_iterations, len(self.lsb.annotations),
               "" if self.lsb.resolved else " [UNRESOLVED]"),
            "Synthesized %d fixed-point types, %d bits total"
            % (len(self.types), self.total_bits()),
        ]
        if self.fallbacks:
            lines.append("Conservative fallback types (LOW CONFIDENCE): %s"
                         % ", ".join(sorted(self.fallbacks)))
        v = self.verification
        if v.output:
            lines.append("Output %r SQNR: %.2f dB (inputs-only baseline: "
                         "%.2f dB)" % (v.output, v.output_sqnr_db,
                                       self.baseline_sqnr_db))
        lines.append("Verification overflows: %d" % v.total_overflows)
        if self.diagnostics is not None and len(self.diagnostics):
            lines.append(self.diagnostics.summary())
        return "\n".join(lines)


class RefinementFlow:
    """Drives a :class:`Design` through the full refinement flow."""

    def __init__(self, design_factory, input_types=None, input_ranges=None,
                 user_ranges=None, user_errors=None, preset_types=None,
                 config=None):
        self.factory = design_factory
        self.input_types = dict(input_types or {})
        self.input_ranges = dict(input_ranges or {})
        self.user_ranges = dict(user_ranges or {})
        self.user_errors = dict(user_errors or {})
        self.preset_types = dict(preset_types or {})
        self.cfg = config if config is not None else FlowConfig()

    # -- simulation helper -------------------------------------------------

    def _simulate(self, annotations, label, config=None):
        cfg = config if config is not None else self.cfg
        ctx = DesignContext(label, seed=cfg.seed, overflow_action="record",
                            guard_action=cfg.guard_action,
                            guard_replacement=cfg.guard_replacement)
        if cfg.max_watchdog_cycles or cfg.max_wall_seconds:
            from repro.robust.guards import Watchdog
            ctx.watchdog = Watchdog(max_cycles=cfg.max_watchdog_cycles,
                                    max_seconds=cfg.max_wall_seconds)
        with obs_trace.span("refine.simulate", label=label,
                            samples=cfg.n_samples) as sp:
            with ctx:
                design = self.factory()
                design.build(ctx)
                annotations.apply(ctx)
                half = max(1, cfg.n_samples // 2)
                design.run(ctx, half)
                snapshot = ctx.snapshot_error_stats()
                design.run(ctx, cfg.n_samples - half)
            sp.set(signals=len(ctx), guard_trips=ctx.guard_trip_count,
                   overflows=len(ctx.overflow_log))
            obs_metrics.emit(ctx, label=label)
        return ctx, design, collect(ctx), snapshot

    @staticmethod
    def _absorb_guards(diagnostics, ctx, label):
        if diagnostics is not None:
            diagnostics.absorb_guards(ctx, label)

    def _fixed_names(self, all_names):
        """Signals whose types are user-given (never refined)."""
        given = set(self.input_types) | set(self.preset_types)
        return expand_names(given, all_names)

    # -- MSB phase ------------------------------------------------------------

    def run_msb_phase(self, config=None, diagnostics=None):
        cfg = config if config is not None else self.cfg
        ranges = dict(self.input_ranges)
        iterations = []
        resolved = False
        phase_span = obs_trace.span("refine.msb_phase",
                                    max_iterations=cfg.max_msb_iterations)
        with phase_span:
            for it in range(1, cfg.max_msb_iterations + 1):
                resolved, stop = self._msb_iteration(
                    it, cfg, ranges, iterations, diagnostics)
                if resolved or stop:
                    break
            phase_span.set(iterations=len(iterations), resolved=resolved)
        accumulated = {k: v for k, v in ranges.items()
                       if k not in self.input_ranges}
        return PhaseResult(iterations, accumulated, resolved)

    def _msb_iteration(self, it, cfg, ranges, iterations, diagnostics):
        """One MSB iteration; returns ``(resolved, stop)``."""
        with obs_trace.span("refine.msb.iteration", index=it) as sp:
            ann = Annotations(
                dtypes={**self.input_types, **self.preset_types},
                ranges=ranges)
            ctx, _, records, _ = self._simulate(ann, "msb-iter-%d" % it,
                                                config=cfg)
            self._absorb_guards(diagnostics, ctx, "msb-iter-%d" % it)
            decisions = {name: decide_msb(rec, cfg.msb_policy)
                         for name, rec in records.items()}
            exploded = [name for name, d in decisions.items()
                        if d.needs_range_annotation]
            added = {}
            if exploded:
                # Knowledge-based annotations first (the paper's way) ...
                for name in exploded:
                    base = _base_name(name)
                    if name in self.user_ranges:
                        added[name] = self.user_ranges[name]
                    elif base in self.user_ranges and base not in added:
                        added[base] = self.user_ranges[base]
                # ... automatic fallback only when no knowledge applies.
                if not added and cfg.auto_range:
                    for name in exploded:
                        rec = records[name]
                        auto = _auto_range(rec, cfg.auto_range_margin)
                        if auto is None:
                            # A never-observed signal carries no range
                            # evidence: inventing one would silently bless
                            # an arbitrary (-1, 1) guess.  Leave it
                            # unresolved and say so.
                            if diagnostics is not None:
                                diagnostics.add(
                                    "auto-range", "warning", name,
                                    "exploded but never observed in "
                                    "simulation; refusing to invent a "
                                    "range — annotate it (user_ranges) "
                                    "or rely on graceful fallback",
                                    iteration=it)
                            continue
                        if rec.observed and rec.stat_min == rec.stat_max:
                            if diagnostics is not None:
                                diagnostics.add(
                                    "auto-range", "warning", name,
                                    "auto range %r derived from a "
                                    "constant simulated value %.4g — "
                                    "LOW CONFIDENCE"
                                    % (auto, rec.stat_min), iteration=it)
                        added[name] = auto
            iterations.append(MsbIteration(it, records, decisions,
                                           exploded, dict(added)))
            n_resolved = sum(1 for d in decisions.values()
                             if not d.needs_range_annotation)
            sp.set(exploded=len(exploded), annotated=len(added))
            sp.event("refine.progress", phase="msb", iteration=it,
                     signals=len(decisions), resolved=n_resolved,
                     exploding=",".join(sorted(exploded)),
                     added=",".join(sorted(added)))
            if not exploded:
                return True, False
            if not added:
                return False, True  # no way to make progress
            ranges.update(added)
        return False, False

    # -- LSB phase --------------------------------------------------------------

    def run_lsb_phase(self, msb_ranges=None, config=None, diagnostics=None):
        cfg = config if config is not None else self.cfg
        ranges = dict(self.input_ranges)
        ranges.update(msb_ranges or {})
        errors = {}
        iterations = []
        resolved = False
        phase_span = obs_trace.span("refine.lsb_phase",
                                    max_iterations=cfg.max_lsb_iterations)
        with phase_span:
            for it in range(1, cfg.max_lsb_iterations + 1):
                resolved, stop = self._lsb_iteration(
                    it, cfg, ranges, errors, iterations, diagnostics)
                if resolved or stop:
                    break
            phase_span.set(iterations=len(iterations), resolved=resolved)
        return PhaseResult(iterations, errors, resolved)

    def _lsb_iteration(self, it, cfg, ranges, errors, iterations,
                       diagnostics):
        """One LSB iteration; returns ``(resolved, stop)``."""
        with obs_trace.span("refine.lsb.iteration", index=it) as sp:
            ann = Annotations(
                dtypes={**self.input_types, **self.preset_types},
                ranges=ranges, errors=errors)
            ctx, design, records, snap = self._simulate(
                ann, "lsb-iter-%d" % it, config=cfg)
            self._absorb_guards(diagnostics, ctx, "lsb-iter-%d" % it)
            # Inputs cannot diverge (their error IS the input
            # quantization), but preset-typed signals can — e.g. a
            # wrap-typed NCO phase whose float reference runs off.
            input_names = expand_names(set(self.input_types),
                                       records.keys())
            divergent = {}
            for name, rec in records.items():
                if name in input_names:
                    continue
                is_div, reason = detect_divergence(rec, cfg.lsb_policy,
                                                   snap.get(name))
                if is_div:
                    divergent[name] = reason
            decisions = {
                name: decide_lsb(rec, cfg.lsb_policy,
                                 divergent=(name in divergent))
                for name, rec in records.items()}
            added = {}
            if divergent:
                for name in divergent:
                    base = _base_name(name)
                    if name in self.user_errors:
                        added[name] = self.user_errors[name]
                    elif base in self.user_errors and base not in added:
                        added[base] = self.user_errors[base]
                    elif cfg.auto_error:
                        added[name] = self._auto_error_q(cfg)
            iterations.append(LsbIteration(it, records, decisions,
                                           dict(divergent), dict(added)))
            out = getattr(design, "output", None)
            sqnr = (records[out].sqnr_db()
                    if out and out in records else float("nan"))
            sp.set(divergent=len(divergent), annotated=len(added))
            sp.event("refine.progress", phase="lsb", iteration=it,
                     signals=len(decisions), divergent=len(divergent),
                     diverging=",".join(sorted(divergent)),
                     sqnr_db=sqnr)
            if not divergent:
                return True, False
            if not added:
                return False, True
            errors.update(added)
        return False, False

    def _auto_error_q(self, config=None):
        cfg = config if config is not None else self.cfg
        f_ref = max((dt.f for dt in self.input_types.values()), default=8)
        return 2.0 ** -(f_ref + cfg.auto_error_extra_bits)

    # -- synthesis ----------------------------------------------------------------

    def synthesize_types(self, msb_phase, lsb_phase, on_unresolved=None):
        """Combine MSB and LSB decisions into full fixed-point types.

        ``on_unresolved(name, msb_decision, lsb_decision, record)`` is
        consulted for signals whose MSB stayed unresolved (explosion or
        unbounded); it may return a fallback :class:`DType` (or ``None``
        to leave the signal floating-point).  Without the hook an
        unresolved signal raises :class:`RefinementError` — the strict
        behaviour.
        """
        cfg = self.cfg
        msb_final = msb_phase.final.decisions
        lsb_final = lsb_phase.final.decisions
        msb_records = msb_phase.final.records
        all_names = list(lsb_final.keys())
        fixed = self._fixed_names(all_names)
        types = {}
        for name in all_names:
            if name in fixed:
                continue
            mdec = msb_final.get(name)
            ldec = lsb_final.get(name)
            if mdec is None or (mdec.msb is None and
                                (ldec is None or ldec.lsb is None)):
                continue  # never exercised: stays floating-point
            unresolved = (mdec.case == "explosion"
                          or isinstance(mdec.msb, float))
            if unresolved:
                if on_unresolved is not None:
                    dt = on_unresolved(name, mdec, ldec,
                                       msb_records.get(name))
                    if dt is not None:
                        types[name] = dt
                    continue
                if mdec.case == "explosion":
                    raise RefinementError(
                        "signal %r has an unresolved MSB explosion; add a "
                        "range() annotation (user_ranges) or enable "
                        "auto_range and rerun the MSB phase" % name)
                raise RefinementError(
                    "signal %r still has an unbounded MSB; rerun the MSB "
                    "phase with a range() annotation" % name)
            msb = mdec.msb if mdec.msb is not None else 0
            f = ldec.lsb if (ldec is not None and ldec.lsb is not None) \
                else cfg.lsb_policy.max_frac_bits
            f = max(f, -msb)            # keep the word at least 1 bit
            lsbspec = ldec.mode if ldec is not None else "round"
            types[name] = DType("%s_t" % name, msb + f + 1, f, "tc",
                                mdec.mode, lsbspec)
        return types

    # -- verification ------------------------------------------------------------

    def verify(self, types, lsb_phase=None, diagnostics=None):
        errors = dict(lsb_phase.annotations) if lsb_phase is not None else {}
        ann = Annotations(
            dtypes={**types, **self.input_types, **self.preset_types},
            errors=errors)
        with obs_trace.span("refine.verify", types=len(types)) as sp:
            ctx, design, records, _ = self._simulate(ann, "verify")
            self._absorb_guards(diagnostics, ctx, "verify")
            output = getattr(design, "output", None)
            sqnr = records[output].sqnr_db() if output else float("nan")
            overflow_signals = {}
            wrap_events = {}
            for name, rec in records.items():
                if not rec.overflow_count:
                    continue
                if rec.dtype is not None and rec.dtype.msbspec == "wrap":
                    # Modulo arithmetic wrapping through the type is the
                    # intended behaviour, not an overflow fault.
                    wrap_events[name] = rec.overflow_count
                else:
                    overflow_signals[name] = rec.overflow_count
            sp.set(sqnr_db=sqnr,
                   overflows=sum(overflow_signals.values()))
        return VerificationResult(records, output, sqnr,
                                  sum(overflow_signals.values()),
                                  overflow_signals, wrap_events)

    # -- baseline -----------------------------------------------------------------

    def baseline_sqnr(self, diagnostics=None):
        """Output SQNR with only the given types applied (pre-refinement).

        Runs a dedicated inputs-only simulation: input and preset types
        are applied, plus the *user-given* ``error()`` annotations of
        those same signals (part of the a-priori partial type
        definition) — but none of the annotations the flow derived.
        """
        given = expand_names(set(self.input_types) | set(self.preset_types),
                             set(self.user_errors))
        errors = {k: v for k, v in self.user_errors.items() if k in given}
        ann = Annotations(
            dtypes={**self.input_types, **self.preset_types}, errors=errors)
        with obs_trace.span("refine.baseline") as sp:
            ctx, design, records, _ = self._simulate(ann, "baseline")
            self._absorb_guards(diagnostics, ctx, "baseline")
            output = getattr(design, "output", None)
            if not output or output not in records:
                if diagnostics is not None:
                    diagnostics.add("baseline", "info", None,
                                    "design declares no output signal; "
                                    "baseline SQNR unavailable")
                return float("nan")
            sqnr = records[output].sqnr_db()
            sp.set(sqnr_db=sqnr)
        return sqnr

    # -- static analysis ----------------------------------------------------------

    def lint(self, n_samples=None, config=None):
        """Static pre-flight check: lint the traced design structure.

        Applies the same a-priori knowledge the flow itself starts from
        (input types, preset types, input ranges and the user's
        ``range()`` annotations), traces a short run and returns a
        :class:`~repro.lint.core.LintReport`.  An FX001 finding here
        predicts the MSB explosion the simulation phases would hit —
        without running them.
        """
        from repro.lint.core import run_lint
        from repro.sfg import trace
        cfg = self.cfg
        n = n_samples if n_samples is not None else cfg.lint_samples
        ctx = DesignContext("lint", seed=cfg.seed, overflow_action="record",
                            guard_action="sanitize")
        with ctx:
            design = self.factory()
            design.build(ctx)
            known = {s.name for s in ctx.signals()}
            ranges = {k: v for k, v in self.user_ranges.items()
                      if k in known or any(s.startswith(k + "[")
                                           for s in known)}
            Annotations(dtypes={**self.input_types, **self.preset_types},
                        ranges=ranges).apply(ctx)
            with trace(ctx) as tracer:
                design.run(ctx, n)
        return run_lint(tracer.sfg, input_ranges=self.input_ranges,
                        design_name=getattr(design, "name", "design"),
                        config=config)

    def _lint_into(self, diagnostics):
        """Run :meth:`lint` defensively; findings become diagnostics."""
        try:
            report = self.lint()
        except Exception as exc:  # lint must never break the flow
            diagnostics.add("lint", "warning", None,
                            "static lint pass failed: %s" % exc)
            return None
        for f in report:
            diagnostics.add("lint", f.severity, f.signal, f.describe(),
                            rule=f.rule_id)
        return report

    def verify_static(self, k=None, backend=None, budget=None,
                      properties=("no-overflow", "no-limit-cycle")):
        """Static pre-flight proofs: bounded model checking of the design.

        Traces the design with the flow's a-priori types (input types
        plus preset types) and discharges the requested properties
        through :mod:`repro.verify`: overflow freedom over the declared
        input ranges and zero-input limit-cycle freedom.  Returns a
        :class:`~repro.verify.verdict.VerifyReport`; honest ``UNKNOWN``
        verdicts (missing input ranges, untyped state, exhausted
        budget) are part of the report, never exceptions.
        """
        from repro.verify import (Envelope, VerifyReport,
                                  prove_no_limit_cycle, prove_no_overflow,
                                  trace_design)
        from repro.verify.verdict import UNKNOWN, Verdict
        cfg = self.cfg
        k = cfg.verify_k if k is None else int(k)
        backend = backend or cfg.verify_backend
        dtypes = {**self.input_types, **self.preset_types}
        traced = trace_design(self.factory, dtypes=dtypes)
        verdicts = []
        if "no-overflow" in properties:
            missing = [n for n in traced.inputs
                       if n not in self.input_ranges]
            if missing:
                verdicts.append(Verdict(
                    "no-overflow", UNKNOWN, traced.name, k, backend,
                    reason="no input range declared for %s; overflow "
                           "freedom needs a full envelope"
                           % ", ".join(sorted(missing))))
            else:
                envelope = Envelope({n: self.input_ranges[n]
                                     for n in traced.inputs})
                verdicts.append(prove_no_overflow(
                    traced, envelope, k, backend=backend, budget=budget,
                    dtypes=dtypes))
        if "no-limit-cycle" in properties:
            verdicts.append(prove_no_limit_cycle(
                traced, k, backend=backend, budget=budget,
                dtypes=dtypes))
        return VerifyReport(verdicts, design_name=traced.name)

    def _verify_into(self, diagnostics):
        """Run :meth:`verify_static` defensively; verdicts become
        DG210-DG212 diagnostics (via their category — never ``rule``,
        so the DG codes win in :class:`DiagEvent.code`)."""
        try:
            report = self.verify_static()
        except Exception as exc:  # proofs must never break the flow
            diagnostics.add("verify-unknown", "warning", None,
                            "static verify pass failed: %s" % exc)
            return None
        for v in report:
            cex = v.counterexample
            diagnostics.add(
                v.category, v.severity, None if cex is None else cex.signal,
                v.describe(), property=v.property, k=v.k,
                backend=v.backend)
        return report

    # -- one-shot -----------------------------------------------------------------

    def _checkpoint_fingerprint(self, strict):
        """Identity of this flow setup; a checkpoint from a different
        setup must not be resumed."""
        import hashlib

        from repro.parallel.runner import _callable_fingerprint
        h = hashlib.sha256()
        for tag, value in (
                ("factory", _callable_fingerprint(self.factory)),
                ("cfg", self.cfg),
                ("input_types", sorted(self.input_types.items())),
                ("input_ranges", sorted(self.input_ranges.items())),
                ("user_ranges", sorted(self.user_ranges.items())),
                ("user_errors", sorted(self.user_errors.items())),
                ("preset_types", sorted(self.preset_types.items())),
                ("strict", strict)):
            h.update(("%s=%r;" % (tag, value)).encode())
        return h.hexdigest()

    def run(self, strict=True, checkpoint=None):
        """Full flow: MSB phase, LSB phase, synthesis, verification.

        With ``strict=True`` (default) an unresolved phase dead-ends in
        :class:`RefinementError`, as the paper's manual flow would.  With
        ``strict=False`` the flow never raises mid-flow: unresolved
        phases are retried through the escalation ladder
        (:mod:`repro.robust.retry`), signals that still resolve to
        nothing receive conservative saturating fallback types, and the
        returned result carries a populated
        :class:`~repro.robust.diagnostics.Diagnostics`.

        ``checkpoint`` (a :class:`repro.robust.recovery.Checkpoint` or a
        path) makes the flow *resumable*: completed stages (baseline,
        MSB phase, LSB phase, type synthesis, verification) are
        snapshotted atomically as they finish, and a re-run after a
        crash replays them from disk — including the diagnostics they
        recorded — continuing with the first unfinished stage.  A
        checkpoint written by a different flow setup (other factory,
        config, annotations or strictness) is ignored, with a warning
        diagnostic, rather than half-resumed.
        """
        from repro.obs import counters as obs_counters
        from repro.robust.diagnostics import Diagnostics
        if checkpoint is not None and not hasattr(checkpoint, "save"):
            from repro.robust.recovery import Checkpoint
            checkpoint = Checkpoint(checkpoint)
        diag = Diagnostics()
        fp = self._checkpoint_fingerprint(strict) \
            if checkpoint is not None else None
        state = {"fingerprint": fp, "stages": {}, "diag_events": []}
        if checkpoint is not None:
            loaded = checkpoint.load()
            if checkpoint.corrupt:
                diag.add("journal", "warning", None,
                         "checkpoint %s is unreadable; restarting the "
                         "flow from scratch" % checkpoint.path)
            elif loaded is not None:
                if loaded.get("fingerprint") != fp:
                    diag.add("journal", "warning", None,
                             "checkpoint %s was written by a different "
                             "flow setup; ignoring it" % checkpoint.path)
                else:
                    state = loaded
                    diag.events = list(state["diag_events"])
        stages = state["stages"]

        def stage(name, compute):
            """Run one flow stage, or replay it from the checkpoint."""
            if name in stages:
                obs_counters.inc("flow.stage_replays")
                obs_trace.event("refine.stage_replay", stage=name)
                diag.add("journal", "info", None,
                         "stage %r replayed from checkpoint %s"
                         % (name, checkpoint.path), stage=name)
                return stages[name]
            value = compute()
            if checkpoint is not None:
                stages[name] = value
                state["diag_events"] = list(diag.events)
                checkpoint.save(state)
            return value

        run_span = obs_trace.span(
            "refine.run", strict=strict,
            design=getattr(self.factory, "__name__", str(self.factory)))
        with run_span:
            if self.cfg.lint_design:
                stage("lint", lambda: bool(self._lint_into(diag)))
            if self.cfg.verify_design:
                stage("verify_static",
                      lambda: bool(self._verify_into(diag)))
            baseline = stage("baseline",
                             lambda: self.baseline_sqnr(diagnostics=diag))
            if strict:
                msb = stage("msb",
                            lambda: self.run_msb_phase(diagnostics=diag))
                lsb = stage("lsb", lambda: self.run_lsb_phase(
                    msb.annotations, diagnostics=diag))
                types = stage("types",
                              lambda: self.synthesize_types(msb, lsb))
                fallbacks = {}
            else:
                from repro.robust.retry import run_graceful

                msb, lsb, types, fallbacks = stage(
                    "graceful", lambda: run_graceful(
                        self, diag, self.cfg.escalation))

            def verify_stage():
                verification = self.verify(types, lsb, diagnostics=diag)
                if verification.total_overflows:
                    diag.add("verification", "warning", None,
                             "%d overflow(s) on non-wrap types during "
                             "verification" % verification.total_overflows,
                             overflows=verification.total_overflows)
                return verification

            verification = stage("verification", verify_stage)
            run_span.set(types=len(types), fallbacks=len(fallbacks),
                         sqnr_db=verification.output_sqnr_db,
                         diagnostics=len(diag))
        return RefinementResult(msb, lsb, types, verification, baseline,
                                diagnostics=diag, fallbacks=fallbacks)


def _base_name(name):
    """``d[3]`` -> ``d`` (array element to array base)."""
    return name.split("[", 1)[0]


def _auto_range(record, margin):
    """Symmetric range annotation derived from the simulated range.

    Returns ``None`` for a signal that was never assigned: there is no
    evidence to derive a range from, and inventing one would silently
    bless an arbitrary guess (the caller records a diagnostic instead).
    A signal observed only at zero still gets the historic ``(-1, 1)``
    fallback, flagged low-confidence by the caller.
    """
    if not record.observed:
        return None
    if record.stat_min == record.stat_max == 0.0:
        return (-1.0, 1.0)
    a = max(abs(record.stat_min), abs(record.stat_max)) * margin
    return (-a, a)
