"""Refinement methodology: MSB/LSB rules, monitors, iterative flow."""

from repro.refine.flow import (
    Annotations,
    Design,
    FlowConfig,
    LsbIteration,
    MsbIteration,
    PhaseResult,
    RefinementFlow,
    RefinementResult,
    VerificationResult,
    expand_names,
)
from repro.refine.lsbrules import (
    LsbDecision,
    LsbPolicy,
    audit_precision,
    decide_lsb,
    detect_divergence,
    lsb_from_sigma,
)
from repro.refine.cost import CostReport, CostWeights, estimate_cost
from repro.refine.export import (
    lsb_table_to_csv,
    msb_table_to_csv,
    result_to_dict,
    result_to_json,
    types_from_dict,
    types_to_csv,
    types_to_dict,
)
from repro.refine.monitors import ErrorSummary, SignalRecord, collect
from repro.refine.optimizer import OptimizeResult, optimize_wordlengths
from repro.refine.sensitivity import (SensitivityReport, SignalSensitivity,
                                      analyze_sensitivity)
from repro.refine.msbrules import MsbDecision, MsbPolicy, decide_msb
from repro.refine.report import (
    format_lsb_table,
    format_msb_table,
    format_table,
    format_types_table,
)

__all__ = [
    "Design",
    "Annotations",
    "FlowConfig",
    "RefinementFlow",
    "RefinementResult",
    "PhaseResult",
    "MsbIteration",
    "LsbIteration",
    "VerificationResult",
    "expand_names",
    "MsbPolicy",
    "MsbDecision",
    "decide_msb",
    "LsbPolicy",
    "LsbDecision",
    "decide_lsb",
    "detect_divergence",
    "audit_precision",
    "lsb_from_sigma",
    "SignalRecord",
    "ErrorSummary",
    "collect",
    "format_msb_table",
    "format_lsb_table",
    "format_types_table",
    "format_table",
    "result_to_dict",
    "result_to_json",
    "types_to_dict",
    "types_from_dict",
    "types_to_csv",
    "msb_table_to_csv",
    "lsb_table_to_csv",
    "CostReport",
    "CostWeights",
    "estimate_cost",
    "SensitivityReport",
    "SignalSensitivity",
    "analyze_sensitivity",
    "OptimizeResult",
    "optimize_wordlengths",
]
