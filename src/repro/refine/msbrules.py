"""MSB refinement rules (paper Section 5.1).

The two range monitors — statistic-based (``stat``) and quasi-analytical
propagation (``prop``) — are compared per signal:

* case **a** — ``m_stat == m_prop``: both techniques agree the signal
  cannot overflow; keep the simulated MSB with a non-saturating mode
  (``error``-typed by default so untested stimuli are still caught).
* case **b** — ``m_prop >> m_stat``: propagation is very pessimistic
  (typically accumulators); saturate at the simulated MSB and report the
  propagated bound as the guard range for the hardware saturation logic.
* case **c** — ``m_prop`` slightly above ``m_stat``: designer trade-off;
  the default policy takes the propagated (safe) MSB, the alternative
  saturates at the simulated MSB.
* **explosion** — the propagated range is unbounded (or beyond the
  explosion margin): feedback made range propagation diverge; the flow
  must add a ``range()`` annotation or a saturating type and reiterate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import word
from repro.core.errors import RefinementError

__all__ = ["MsbPolicy", "MsbDecision", "decide_msb"]

CASE_AGREE = "a"
CASE_PESSIMISTIC = "b"
CASE_TRADEOFF = "c"
CASE_EXPLOSION = "explosion"
CASE_UNOBSERVED = "unobserved"
CASE_NO_PROP = "no-prop"


@dataclass(frozen=True)
class MsbPolicy:
    """Tunable thresholds of the MSB rules."""

    #: prop-stat gap (bits) treated as a designer trade-off (case c).
    tradeoff_margin: int = 2
    #: gap beyond which propagation is written off as exploded.
    explosion_margin: int = 8
    #: case-c choice: "prop" (take the safe propagated MSB) or
    #: "stat" (saturate at the simulated MSB).
    prefer: str = "prop"
    #: MSB mode assigned to non-saturated signals ("error" or "wrap").
    nonsat_mode: str = "error"

    def __post_init__(self):
        if self.prefer not in ("prop", "stat"):
            raise RefinementError("prefer must be 'prop' or 'stat'")
        if self.nonsat_mode not in ("error", "wrap"):
            raise RefinementError("nonsat_mode must be 'error' or 'wrap'")
        if self.tradeoff_margin < 0 or self.explosion_margin <= self.tradeoff_margin:
            raise RefinementError("need 0 <= tradeoff_margin < explosion_margin")


@dataclass(frozen=True)
class MsbDecision:
    """Outcome of the MSB rules for one signal."""

    name: str
    stat_msb: object      # int, None (unobserved/zero) or inf
    prop_msb: object      # int, None (no propagation) or inf (exploded)
    msb: object           # decided MSB position (int or None)
    mode: str             # 'error' | 'wrap' | 'saturate'
    case: str             # one of the CASE_* constants
    guard_msb: object = None   # guard bound for saturating hardware
    note: str = ""

    @property
    def needs_range_annotation(self):
        return self.case == CASE_EXPLOSION

    def overhead_bits(self):
        """Decided-minus-simulated MSB (the cost of safety, in bits)."""
        if self.msb is None or self.stat_msb is None:
            return 0
        if math.isinf(self.msb) or math.isinf(self.stat_msb):
            return 0
        return self.msb - self.stat_msb


def _effective_stat_msb(record, signed):
    """Simulated MSB; zero-only signals count as the smallest position."""
    m = record.stat_msb(signed=signed)
    return m


def decide_msb(record, policy=MsbPolicy(), signed=True):
    """Apply the paper's MSB refinement rules to one signal record."""
    stat = _effective_stat_msb(record, signed)
    prop = record.prop_msb(signed=signed)

    # Forced ranges are saturation knowledge: the decision is the
    # annotated range with saturation, guarded by the simulated range.
    if record.forced_range is not None:
        forced_msb = word.required_msb(record.forced_range.lo,
                                       record.forced_range.hi, signed=signed)
        return MsbDecision(record.name, stat, prop, forced_msb, "saturate",
                           CASE_PESSIMISTIC, guard_msb=stat,
                           note="range() annotation")

    if not record.observed:
        if prop is not None and not math.isinf(prop):
            return MsbDecision(record.name, None, prop, prop,
                               policy.nonsat_mode, CASE_UNOBSERVED,
                               note="never assigned; propagation only")
        return MsbDecision(record.name, None, prop, None, policy.nonsat_mode,
                           CASE_UNOBSERVED,
                           note="never assigned and no propagated range")

    if prop is None:
        if stat is None:
            return MsbDecision(record.name, None, None, None,
                               policy.nonsat_mode, CASE_UNOBSERVED,
                               note="signal stayed at zero")
        return MsbDecision(record.name, stat, None, stat, "saturate",
                           CASE_NO_PROP, guard_msb=stat,
                           note="no propagated range; simulation only")

    if stat is None:
        # Signal only ever carried zero but propagation has a bound.
        if math.isinf(prop):
            return MsbDecision(record.name, None, prop, None, "saturate",
                               CASE_EXPLOSION,
                               note="propagation exploded; signal at zero")
        return MsbDecision(record.name, None, prop, prop,
                           policy.nonsat_mode, CASE_AGREE,
                           note="zero-valued; propagated MSB")

    if math.isinf(prop) or prop - stat > policy.explosion_margin:
        return MsbDecision(record.name, stat, prop, stat, "saturate",
                           CASE_EXPLOSION, guard_msb=stat,
                           note="range propagation exploded; add range() "
                                "or a saturating type and reiterate")

    gap = prop - stat
    if gap <= 0:
        note = "" if gap == 0 else ("simulation exceeded propagated range; "
                                    "check input seeds")
        # Propagation proves the simulated MSB safe (case a).
        msb = max(stat, prop) if gap < 0 else stat
        return MsbDecision(record.name, stat, prop, msb, policy.nonsat_mode,
                           CASE_AGREE, note=note)

    if gap <= policy.tradeoff_margin:
        if policy.prefer == "prop":
            return MsbDecision(record.name, stat, prop, prop,
                               policy.nonsat_mode, CASE_TRADEOFF,
                               note="took propagated MSB (+%d bit)" % gap)
        return MsbDecision(record.name, stat, prop, stat, "saturate",
                           CASE_TRADEOFF, guard_msb=prop,
                           note="saturated at simulated MSB")

    # Case b: propagation very pessimistic (accumulator-like).
    return MsbDecision(record.name, stat, prop, stat, "saturate",
                       CASE_PESSIMISTIC, guard_msb=prop,
                       note="propagation pessimistic (+%d bits); saturating"
                            % gap)
