"""Per-signal measurement records collected after a monitored simulation.

A :class:`SignalRecord` is an immutable snapshot of everything the
refinement rules need about one signal: the statistic-based range, the
propagated range, the consumed/produced error statistics, the reference
power, overflow counts and annotations.  :func:`collect` snapshots a
whole design context.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core import word
from repro.core.interval import Interval

__all__ = ["ErrorSummary", "SignalRecord", "collect"]


@dataclass(frozen=True)
class ErrorSummary:
    """Frozen view of an :class:`~repro.core.stats.ErrorStat`."""

    count: int
    mean: float
    std: float
    max_abs: float

    @classmethod
    def from_stat(cls, stat):
        return cls(stat.count, stat.mean, stat.std, stat.max_abs)

    @property
    def rms(self):
        return math.sqrt(self.std * self.std + self.mean * self.mean)


@dataclass(frozen=True)
class SignalRecord:
    """Measurement snapshot of one signal after a simulation run."""

    name: str
    is_register: bool
    dtype: object                      # DType or None
    role: str

    # Statistic-based range monitor.
    n_assign: int
    stat_min: float
    stat_max: float
    frac_bits: int

    # Quasi-analytical range propagation.
    prop: Interval = field(default_factory=Interval)

    # Error monitor.
    err_consumed: ErrorSummary = ErrorSummary(0, 0.0, 0.0, 0.0)
    err_produced: ErrorSummary = ErrorSummary(0, 0.0, 0.0, 0.0)
    val_rms: float = 0.0

    overflow_count: int = 0
    forced_range: object = None        # Interval or None
    forced_error: object = None        # float or None

    # -- derived -----------------------------------------------------------

    @property
    def observed(self):
        return self.n_assign > 0

    def stat_msb(self, signed=True):
        """Required MSB of the observed (simulated) range."""
        if not self.observed:
            return None
        return word.required_msb(self.stat_min, self.stat_max, signed=signed)

    def prop_msb(self, signed=True):
        """Required MSB of the propagated range (inf when exploded)."""
        if self.prop.is_empty:
            return None
        return word.required_msb(self.prop.lo, self.prop.hi, signed=signed)

    @property
    def prop_exploded(self):
        return not self.prop.is_empty and not self.prop.is_finite

    def sqnr_db(self):
        noise = self.err_produced.rms
        if self.err_produced.count == 0:
            return math.nan
        if noise == 0.0:
            return math.inf
        if self.val_rms == 0.0:
            return -math.inf
        return 20.0 * math.log10(self.val_rms / noise)

    @classmethod
    def from_signal(cls, sig):
        rs = sig.range_stat
        return cls(
            name=sig.name,
            is_register=sig.is_register,
            dtype=sig.dtype,
            role=sig.role,
            n_assign=rs.count,
            stat_min=rs.min if rs.count else math.nan,
            stat_max=rs.max if rs.count else math.nan,
            frac_bits=rs.frac_bits,
            prop=sig.prop_interval(),
            err_consumed=ErrorSummary.from_stat(sig.err_consumed),
            err_produced=ErrorSummary.from_stat(sig.err_produced),
            val_rms=sig.val_stat.rms,
            overflow_count=sig.overflow_count,
            forced_range=sig.forced_range,
            forced_error=sig.forced_error,
        )


def collect(ctx):
    """Snapshot every signal of a context, keyed by name (ordered)."""
    return {s.name: SignalRecord.from_signal(s) for s in ctx.signals()}
