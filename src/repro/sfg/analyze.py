"""Analytical range propagation over a signal flow graph.

This is the paper's third MSB method: propagate value ranges through the
*structure* of the design (no simulation values involved), using the same
interval arithmetic as the quasi-analytical method.  Feedback loops are
handled by fixpoint iteration with widening: a range that keeps growing
is driven to infinity, which the refinement rules then classify as MSB
explosion — the cue for a ``range()`` annotation or a saturating type.
"""

from __future__ import annotations

from repro.core.errors import DesignError, RangeDivergenceError
from repro.core.interval import Interval

__all__ = ["propagate_ranges", "RangeAnalysis"]


def _eval_op(label, ins):
    """Interval semantics of one traced operation."""
    if label == "add":
        return ins[0] + ins[1]
    if label == "sub":
        return ins[0] - ins[1]
    if label == "mul":
        return ins[0] * ins[1]
    if label == "div":
        return ins[0] / ins[1]
    if label == "neg":
        return -ins[0]
    if label == "abs":
        return abs(ins[0])
    if label == "min":
        return ins[0].minimum(ins[1])
    if label == "max":
        return ins[0].maximum(ins[1])
    if label in ("gt", "ge", "lt", "le"):
        return Interval(0.0, 1.0)
    if label == "select":
        # Operands are (cond?, if_true, if_false): value range is the
        # union of the two branches regardless of the condition.
        return ins[-2].union(ins[-1])
    if label.startswith("shl"):
        return ins[0].scale_pow2(int(label[3:]))
    if label.startswith("shr"):
        return ins[0].scale_pow2(-int(label[3:]))
    from repro.core.dtype import DType
    dt = DType.from_cast_label(label)
    if dt is not None:
        if dt.msbspec == "saturate":
            return ins[0].clip(dt.range_interval())
        return ins[0]
    raise DesignError("unknown traced operation %r" % label)


class RangeAnalysis:
    """Result of :func:`propagate_ranges`."""

    def __init__(self, ranges, exploded, rounds, converged,
                 node_ranges=None, diverged=None, first_diverged=None):
        #: dict signal name -> Interval
        self.ranges = ranges
        #: dict Node -> Interval (every graph node, incl. op nodes)
        self.node_ranges = node_ranges or {}
        #: names whose range is unbounded after widening
        self.exploded = exploded
        #: fixpoint rounds executed
        self.rounds = rounds
        #: True when a fixpoint was reached
        self.converged = converged
        #: dict signal name -> fixpoint round at which its interval first
        #: became unbounded (divergence attribution)
        self.diverged = diverged or {}
        #: name of the signal that diverged first (None when bounded) —
        #: the actionable location for a range() annotation
        self.first_diverged = first_diverged

    def msb(self, name, signed=True):
        """Required MSB position of a signal (None/inf per interval)."""
        from repro.core import word
        iv = self.ranges[name]
        if iv.is_empty:
            return None
        return word.required_msb(iv.lo, iv.hi, signed=signed)

    def __repr__(self):
        return ("RangeAnalysis(%d signals, %d exploded, rounds=%d, "
                "converged=%s)" % (len(self.ranges), len(self.exploded),
                                   self.rounds, self.converged))


def _signal_constraint(sfg, node, input_ranges, forced_ranges, clip_ranges):
    """(seed, forced, clip) intervals applicable to a signal node."""
    name = node.label
    seed = input_ranges.get(name)
    forced = forced_ranges.get(name)
    clip = clip_ranges.get(name)
    sig = sfg.sig_payload(name)
    if sig is not None:
        if forced is None and getattr(sig, "forced_range", None) is not None:
            forced = sig.forced_range
        dt = getattr(sig, "dtype", None)
        if clip is None and dt is not None and dt.msbspec == "saturate":
            clip = dt.range_interval()
    return seed, forced, clip


def propagate_ranges(sfg, input_ranges=None, forced_ranges=None,
                     clip_ranges=None, max_rounds=100, widen_after=16,
                     raise_on_explosion=False):
    """Fixpoint interval propagation over ``sfg``.

    Parameters
    ----------
    input_ranges:
        Seed ranges for primary inputs, by signal name.  A seeded signal's
        own drivers (if any) are ignored — it is treated as an input.
    forced_ranges:
        Per-signal ``range()``-style overrides (freeze propagation).
        Annotations found on traced signal objects are honoured as well.
    clip_ranges:
        Per-signal saturation ranges (propagated value is clipped, not
        frozen).  Saturating dtypes on traced signals are honoured too.
    widen_after:
        Rounds of plain iteration before the widening operator kicks in.
    raise_on_explosion:
        Raise :class:`~repro.core.errors.RangeDivergenceError` naming the
        first diverged signal instead of returning an exploded result.
    """
    input_ranges = dict(input_ranges or {})
    forced_ranges = {k: Interval.coerce(v)
                     for k, v in (forced_ranges or {}).items()}
    clip_ranges = {k: Interval.coerce(v)
                   for k, v in (clip_ranges or {}).items()}
    for k, v in list(input_ranges.items()):
        input_ranges[k] = Interval.coerce(v)

    order = sfg.condensed_order()
    values = {}
    for node in order:
        if node.kind == "const":
            values[node] = Interval.point(node.payload)
        else:
            values[node] = Interval()

    sig_nodes = [n for n in order if n.kind in ("sig", "reg")]

    def eval_node(node):
        if node.kind == "const":
            return values[node]
        preds = sfg.preds(node)
        if node.kind == "op":
            ins = [values[p] for p in preds]
            return _eval_op(node.label, ins)
        # Signal node: union of assigned drivers.
        seed, forced, clip = _signal_constraint(sfg, node, input_ranges,
                                                forced_ranges, clip_ranges)
        if forced is not None:
            return forced
        if seed is not None:
            return seed
        if node.kind == "reg":
            # Registers power up at a known value, which seeds the
            # fixpoint iteration through feedback loops.
            init = getattr(sfg.sig_payload(node.label), "init_value",
                           0.0) or 0.0
            acc = Interval.point(init)
        else:
            acc = Interval()
        for p in preds:
            acc = acc.union(values[p])
        if acc.is_empty and not preds:
            # Driverless signal (e.g. a constant coefficient assigned
            # before tracing started): its held value is part of the
            # source description, so seed the analysis with it.
            sig = sfg.sig_payload(node.label)
            if sig is not None:
                acc = sig.read_interval()
        if clip is not None and not acc.is_empty:
            acc = acc.clip(clip)
        return acc

    converged = False
    rounds = 0
    diverged = {}
    for rounds in range(1, max_rounds + 1):
        changed = False
        for node in order:
            if node.kind == "const":
                continue
            new = eval_node(node)
            if node.kind in ("sig", "reg") and rounds > widen_after:
                new = values[node].widen_to(new)
            if new != values[node]:
                values[node] = new
                changed = True
                # Divergence attribution: remember the round each signal
                # first left the finite lattice (widening or an
                # inherently unbounded op such as a zero-crossing
                # division).  The topological sweep order makes the
                # within-round order deterministic.
                if (node.kind in ("sig", "reg")
                        and not new.is_empty and not new.is_finite
                        and node.label not in diverged):
                    diverged[node.label] = rounds
        if not changed:
            converged = True
            break

    ranges = {n.label: values[n] for n in sig_nodes}
    exploded = sorted(name for name, iv in ranges.items()
                      if not iv.is_empty and not iv.is_finite)
    topo_pos = {n.label: i for i, n in enumerate(order)
                if n.kind in ("sig", "reg")}
    first = None
    if exploded:
        # First by round, then by topological position within the round.
        first = min(exploded,
                    key=lambda n: (diverged.get(n, rounds + 1),
                                   topo_pos.get(n, len(order))))
        if raise_on_explosion:
            raise RangeDivergenceError(
                "range propagation diverged at signal %r (fixpoint round "
                "%d; %d signal(s) unbounded: %s) — add a range() "
                "annotation or a saturating type on the feedback path"
                % (first, diverged.get(first, rounds), len(exploded),
                   ", ".join(exploded)),
                signal=first, round=diverged.get(first), signals=exploded)
    return RangeAnalysis(ranges, exploded, rounds, converged,
                         node_ranges=dict(values), diverged=diverged,
                         first_diverged=first)
