"""Signal flow graph capture and analytical range propagation."""

from repro.sfg.analyze import RangeAnalysis, propagate_ranges
from repro.sfg.build import Tracer, trace
from repro.sfg.graph import SFG, Node

__all__ = ["SFG", "Node", "Tracer", "trace", "RangeAnalysis",
           "propagate_ranges"]
