"""Signal flow graph data structure.

The analytical MSB method of the paper (Section 4.1) evaluates signal
ranges "by constructing a signal flowgraph out of the source code and
analyzing the data flow using the same range propagation mechanism".
In this environment the graph is captured by *tracing* overloaded
operations (see :mod:`repro.sfg.build`) and stored here as a
:class:`networkx.DiGraph` of typed nodes.

Node kinds:

* ``sig`` / ``reg`` — a design signal (registers are delay elements and
  the legal place for feedback cycles),
* ``op`` — one arithmetic/select/cast operation,
* ``const`` — a literal operand.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import networkx as nx

from repro.core.errors import DesignError

__all__ = ["Node", "SFG"]


@dataclass(frozen=True)
class Node:
    """One vertex of the signal flow graph."""

    id: int
    kind: str            # 'sig' | 'reg' | 'op' | 'const'
    label: str           # signal name / op name / literal repr
    payload: object = field(default=None, compare=False, hash=False)

    def __repr__(self):
        return "Node(%d, %s, %r)" % (self.id, self.kind, self.label)


class SFG:
    """A signal flow graph with convenience queries for the analyzer."""

    def __init__(self):
        self.g = nx.DiGraph()
        self._next_id = 0
        self._by_key = {}
        self._sig_payloads = {}

    # -- construction -----------------------------------------------------

    def _new_node(self, kind, label, key, payload=None):
        if key in self._by_key:
            return self._by_key[key]
        node = Node(self._next_id, kind, label, payload)
        self._next_id += 1
        self.g.add_node(node)
        self._by_key[key] = node
        return node

    def sig_node(self, name, is_register=False, payload=None):
        kind = "reg" if is_register else "sig"
        key = ("sig", name)
        if payload is not None:
            self._sig_payloads[name] = payload
        node = self._by_key.get(key)
        if node is not None:
            if node.kind != kind:
                raise DesignError("signal %r traced as both sig and reg"
                                  % name)
            return node
        return self._new_node(kind, name, key)

    def sig_payload(self, name):
        """Signal object attached to a traced signal node (or None)."""
        return self._sig_payloads.get(name)

    def const_node(self, value):
        return self._new_node("const", repr(float(value)),
                              ("const", float(value)), float(value))

    def op_node(self, opname, operand_nodes):
        """Structurally deduplicated operation node.

        Re-executing the same source expression on the same operand
        signals maps onto the same node, so the traced graph stays small
        no matter how many samples the trace covers.
        """
        key = ("op", opname, tuple(n.id for n in operand_nodes))
        node = self._by_key.get(key)
        if node is None:
            node = self._new_node("op", opname, key)
            for pos, src in enumerate(operand_nodes):
                self.g.add_edge(src, node, pos=pos)
        return node

    def assign_edge(self, src_node, sig_name, is_register=False):
        dst = self.sig_node(sig_name, is_register)
        self.g.add_edge(src_node, dst, pos=0, assign=True)
        return dst

    # -- queries ---------------------------------------------------------------

    def nodes(self, kind=None):
        if kind is None:
            return list(self.g.nodes)
        return [n for n in self.g.nodes if n.kind == kind]

    def signal_nodes(self):
        return [n for n in self.g.nodes if n.kind in ("sig", "reg")]

    def signal_names(self):
        return [n.label for n in self.signal_nodes()]

    def node_for_signal(self, name):
        node = self._by_key.get(("sig", name))
        if node is None:
            raise DesignError("signal %r is not in the traced graph" % name)
        return node

    def preds(self, node):
        """Predecessors ordered by operand position."""
        items = sorted(self.g.in_edges(node, data=True),
                       key=lambda e: e[2].get("pos", 0))
        return [src for src, _dst, _d in items]

    def succs(self, node):
        return list(self.g.successors(node))

    def sources(self):
        """Signal nodes with no drivers (primary inputs / constants-only)."""
        return [n for n in self.signal_nodes()
                if self.g.in_degree(n) == 0]

    def cycles(self):
        """Elementary cycles of the graph, deterministic and deduplicated.

        Each cycle is a list of :class:`Node` in flow order, rotated so
        it starts at the structurally smallest node (ordered by
        ``(kind, label)``); the cycle list itself is sorted by those
        structural keys.  Node ids — which depend on trace order — never
        participate, so two traces of the same design yield the same
        cycle sets even when the source executed statements in a
        different order.  Cycles that are structurally identical
        (same node kind/label sequence) are reported once.
        """
        found = {}
        for cyc in nx.simple_cycles(self.g):
            canon = self._canonical_cycle(cyc)
            key = tuple((n.kind, n.label) for n in canon)
            if key not in found:
                found[key] = canon
        return [found[k] for k in sorted(found)]

    @staticmethod
    def _canonical_cycle(nodes):
        """Rotate a cycle to its lexicographically smallest key sequence."""
        keys = [(n.kind, n.label) for n in nodes]
        best = None
        best_rot = 0
        for i in range(len(nodes)):
            rot = keys[i:] + keys[:i]
            if best is None or rot < best:
                best = rot
                best_rot = i
        return list(nodes[best_rot:]) + list(nodes[:best_rot])

    @staticmethod
    def cycle_signal_names(cycle):
        """Names of the ``sig``/``reg`` nodes on one cycle (flow order)."""
        return [n.label for n in cycle if n.kind in ("sig", "reg")]

    def feedback_signals(self):
        """Names of signals that sit on a cycle of the flow graph.

        Cycles always pass through a ``sig``/``reg`` node (expressions are
        trees); these are the candidates for MSB explosion and LSB
        divergence.
        """
        names = []
        for scc in nx.strongly_connected_components(self.g):
            if len(scc) > 1:
                names.extend(n.label for n in scc
                             if n.kind in ("sig", "reg"))
            else:
                (n,) = scc
                if self.g.has_edge(n, n) and n.kind in ("sig", "reg"):
                    names.append(n.label)
        return sorted(set(names))

    @staticmethod
    def _structural_key(node):
        """Sort key independent of trace order up to the final id tiebreak.

        ``(kind, label)`` orders nodes structurally; the id only breaks
        ties between distinct nodes that share both (e.g. two ``add`` op
        nodes), where *some* stable tiebreak is required.
        """
        return (node.kind, node.label, node.id)

    def topological_order(self):
        """Deterministic topological order of the full graph.

        Lexicographic Kahn's algorithm: among all ready nodes the one
        with the smallest structural ``(kind, label)`` key is emitted
        first, so the order does not depend on hash/insertion accidents.

        Raises :class:`~repro.core.errors.DesignError` when the graph is
        cyclic, naming the signals on an offending cycle — feedback
        graphs must be scheduled via :meth:`condensed_order` (or have
        their registers split first, as the compiler does).
        """
        indegree = {n: self.g.in_degree(n) for n in self.g.nodes}
        heap = [self._structural_key(n) + (n,)
                for n in self.g.nodes if indegree[n] == 0]
        heapq.heapify(heap)
        order = []
        while heap:
            node = heapq.heappop(heap)[-1]
            order.append(node)
            for succ in self.g.successors(node):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(heap, self._structural_key(succ) + (succ,))
        if len(order) != self.g.number_of_nodes():
            cycles = self.cycles()
            if cycles:
                names = self.cycle_signal_names(cycles[0])
                detail = " -> ".join(names + names[:1]) if names else "?"
            else:        # pragma: no cover - cycles() finds one when Kahn stalls
                detail = "?"
            raise DesignError(
                "signal flow graph is cyclic (feedback through %s); "
                "topological_order() requires an acyclic graph -- use "
                "condensed_order() for cycle-safe scheduling" % detail)
        return order

    def condensed_order(self):
        """Topological order of the acyclic condensation (cycle-safe).

        Components are emitted in condensation order; *within* a
        strongly connected component the feedback edges into ``reg``
        nodes (the legal cycle points) are cut, and the remaining
        combinational subgraph is scheduled by the same lexicographic
        Kahn as :meth:`topological_order` — so op operands still precede
        their ops, and the result is stable across traces of the same
        design.  Nodes on a purely combinational cycle (a design error
        that downstream consumers diagnose) are appended in structural
        order.
        """
        cond = nx.condensation(self.g)
        order = []
        for comp_id in nx.topological_sort(cond):
            members = cond.nodes[comp_id]["members"]
            if len(members) == 1:
                order.extend(members)
            else:
                order.extend(self._component_order(members))
        return order

    def _component_order(self, members):
        """Schedule one SCC: registers first, then combinational flow."""
        members = set(members)
        indegree = {}
        for n in members:
            if n.kind == "reg":
                indegree[n] = 0       # feedback in-edges cut: reg = source
            else:
                indegree[n] = sum(1 for p in self.g.predecessors(n)
                                  if p in members)
        heap = [self._structural_key(n) + (n,)
                for n in members if indegree[n] == 0]
        heapq.heapify(heap)
        out = []
        emitted = set()
        while heap:
            node = heapq.heappop(heap)[-1]
            emitted.add(node)
            out.append(node)
            for succ in self.g.successors(node):
                if succ in members and succ.kind != "reg":
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        heapq.heappush(heap,
                                       self._structural_key(succ) + (succ,))
        out.extend(sorted(members - emitted, key=self._structural_key))
        return out

    @property
    def n_nodes(self):
        return self.g.number_of_nodes()

    @property
    def n_edges(self):
        return self.g.number_of_edges()

    def __repr__(self):
        return "SFG(%d nodes, %d edges, %d signals)" % (
            self.n_nodes, self.n_edges, len(self.signal_nodes()))
