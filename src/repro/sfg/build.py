"""Trace-based construction of the signal flow graph.

A :class:`Tracer` attaches to a :class:`~repro.signal.context.DesignContext`;
while attached, every overloaded operation and every assignment adds
(structurally deduplicated) nodes and edges to an :class:`~repro.sfg.graph.SFG`.
Running a couple of iterations of the algorithm under trace is enough to
capture the full static structure — exactly the "signal flowgraph out of
the source code" the paper's analytical method needs, obtained without a
C parser.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.errors import DesignError
from repro.sfg.graph import SFG

__all__ = ["Tracer", "trace"]


class Tracer:
    """Collects an :class:`SFG` from overloaded-operator executions."""

    def __init__(self):
        self.sfg = SFG()

    # Interface used by repro.signal.expr / repro.signal.signal ----------

    def sig_node(self, sig):
        return self.sfg.sig_node(sig.name, sig.is_register, payload=sig)

    def const_node(self, value):
        return self.sfg.const_node(value)

    def op_node(self, opname, operand_nodes):
        return self.sfg.op_node(opname, operand_nodes)

    def assign_edge(self, src_node, sig):
        self.sfg.sig_node(sig.name, sig.is_register, payload=sig)
        return self.sfg.assign_edge(src_node, sig.name, sig.is_register)


@contextmanager
def trace(ctx, tracer=None):
    """Attach a tracer to ``ctx`` for the duration of the ``with`` block.

    Returns the tracer, whose ``.sfg`` holds the captured graph::

        with trace(ctx) as t:
            design.run(ctx, 4)      # a few iterations suffice
        graph = t.sfg
    """
    if ctx.tracer is not None:
        raise DesignError("context %r already has an active tracer"
                          % ctx.name)
    tracer = tracer if tracer is not None else Tracer()
    ctx.tracer = tracer
    try:
        yield tracer
    finally:
        ctx.tracer = None
