"""Fixed-point type objects — the paper's ``dtype``.

A :class:`DType` carries the full fixed-point characteristic of a signal:

* ``n`` — total wordlength in bits,
* ``f`` — number of fractional bits (the LSB weight is ``2**-f``),
* ``vtype`` — value representation, two's complement (``"tc"``) or
  unsigned (``"us"``),
* ``msbspec`` — overflow behaviour: ``"wrap"``, ``"saturate"`` or
  ``"error"`` (simulation flags the overflow so the designer can widen
  the type or change the mode),
* ``lsbspec`` — rounding behaviour: ``"round"`` (round-half-up) or
  ``"floor"`` (truncate toward minus infinity).

Positions follow the binary-point convention of the paper: the MSB
position of a two's-complement type is ``n - f - 1`` (weight of the sign
bit) and the LSB position is ``f`` fractional bits (weight ``2**-f``).
"""

from __future__ import annotations

import re

from repro.core import quantize as _q
from repro.core import word
from repro.core.errors import DTypeError
from repro.core.interval import Interval

__all__ = ["DType"]

#: Traced cast-operation label, e.g. ``cast<8,5,tc,sa,ro>`` (see
#: :func:`repro.signal.ops.cast`).  Shared by the analytical range
#: propagation, the netlist builder and the static lint rules.
_CAST_LABEL_RE = re.compile(r"^cast<(\d+),(\d+),(tc|us),(\w\w),(\w\w)>$")

_VTYPE_ALIASES = {
    "tc": "tc", "twos_complement": "tc", "signed": "tc",
    "us": "us", "unsigned": "us",
}

_MSB_ALIASES = {
    "wr": "wrap", "wrap": "wrap", "wrap_around": "wrap",
    "st": "saturate", "sat": "saturate", "saturate": "saturate",
    "er": "error", "error": "error",
}

_LSB_ALIASES = {
    "rd": "round", "round": "round", "round_off": "round",
    "fl": "floor", "floor": "floor",
    "ceil": "ceil", "trunc": "trunc",
}


class DType:
    """Immutable fixed-point type descriptor.

    Example (the paper's ``dtype T1("T1", 8, 5, ns, st, rd)``):

    >>> T1 = DType("T1", 8, 5, "tc", "saturate", "round")
    >>> T1.quantize(0.123)
    0.125
    >>> T1.spec()
    '<8,5,tc,sa,ro>'
    >>> (T1.msb, T1.lsb, T1.eps)
    (2, 5, 0.03125)
    >>> (T1.min_value, T1.max_value)
    (-4.0, 3.96875)

    Values beyond the representable range follow ``msbspec`` — here the
    type saturates:

    >>> T1.quantize(17.0)
    3.96875
    >>> T1.with_(msbspec="wrap").quantize(17.0)
    1.0
    """

    __slots__ = ("name", "n", "f", "vtype", "msbspec", "lsbspec",
                 "_kernel", "_saturating", "_range_ival")

    def __init__(self, name, n, f, vtype="tc", msbspec="saturate",
                 lsbspec="round"):
        n = int(n)
        f = int(f)
        if n < 1:
            raise DTypeError("wordlength must be >= 1, got %d" % n)
        if vtype not in _VTYPE_ALIASES:
            raise DTypeError("unknown vtype %r" % (vtype,))
        if msbspec not in _MSB_ALIASES:
            raise DTypeError("unknown msbspec %r" % (msbspec,))
        if lsbspec not in _LSB_ALIASES:
            raise DTypeError("unknown lsbspec %r" % (lsbspec,))
        self.name = str(name)
        self.n = n
        self.f = f
        self.vtype = _VTYPE_ALIASES[vtype]
        self.msbspec = _MSB_ALIASES[msbspec]
        self.lsbspec = _LSB_ALIASES[lsbspec]
        # Lazily built caches (see the kernel/saturating properties).
        self._kernel = None
        self._saturating = None
        self._range_ival = None

    # -- derived characteristics -------------------------------------------

    @property
    def signed(self):
        return self.vtype == "tc"

    @property
    def msb(self):
        """MSB position relative to the binary point."""
        return word.msb_of_wordlength(self.n, self.f, self.signed)

    @property
    def lsb(self):
        """LSB position: number of fractional bits (weight ``2**-f``)."""
        return self.f

    @property
    def eps(self):
        """Weight of one LSB."""
        return _q.quantization_step(self.f)

    @property
    def min_value(self):
        return _q.value_min(self.n, self.f, self.signed)

    @property
    def max_value(self):
        return _q.value_max(self.n, self.f, self.signed)

    def range_interval(self):
        """Representable range as an :class:`Interval` (cached; treat as
        read-only)."""
        ival = self._range_ival
        if ival is None:
            ival = self._range_ival = Interval(self.min_value,
                                               self.max_value)
        return ival

    @property
    def num_codes(self):
        return 1 << self.n

    # -- integer-code (bit-level) semantics ---------------------------------
    #
    # A stored word is an integer *code*; the value is ``code * 2**-f``.
    # These methods are the exact-arithmetic twin of the float kernel,
    # shared by the bit-vector verifier (repro.verify) and property-tested
    # bit-for-bit against :attr:`kernel` in tests/test_verify_encode.py.

    @property
    def code_min(self):
        """Smallest representable integer code."""
        return word.int_min(self.n, self.signed)

    @property
    def code_max(self):
        """Largest representable integer code."""
        return word.int_max(self.n, self.signed)

    def to_code(self, value):
        """Integer code of a value that lies exactly on this type's grid.

        >>> DType("T", 8, 5).to_code(0.125)
        4
        """
        code = int(round(float(value) * (1 << self.f)))
        if code * 2.0 ** -self.f != float(value):
            raise DTypeError("value %r is not on the 2**-%d grid"
                             % (value, self.f))
        return code

    def value_of_code(self, code):
        """Real value of an integer code (``code * 2**-f``)."""
        return int(code) * 2.0 ** -self.f

    def quantize_code(self, code, f_in):
        """Quantize a code on the ``2**-f_in`` grid into this type.

        Pure integer arithmetic: returns ``(code_out, overflowed)`` where
        ``code_out`` is the stored code after rounding (per ``lsbspec``)
        and overflow handling (per ``msbspec``; ``error`` behaves as the
        recorded-saturate path of the simulator).  Bit-identical to
        feeding ``code * 2**-f_in`` through :attr:`kernel` whenever that
        float is exact.

        >>> t = DType("T", 4, 2, "tc", "wrap", "round")
        >>> t.quantize_code(9, 3)        # 1.125 -> round -> wrap
        (5, False)
        >>> t.quantize_code(15, 1)       # 7.5 overflows, wraps to -0.5
        (-2, True)
        """
        rounded = word.shift_round_code(code, int(f_in) - self.f,
                                        self.lsbspec)
        lo = word.int_min(self.n, self.signed)
        hi = word.int_max(self.n, self.signed)
        if lo <= rounded <= hi:
            return rounded, False
        if self.msbspec == "wrap":
            return word.wrap_code(rounded, self.n, self.signed), True
        return word.saturate_code(rounded, self.n, self.signed), True

    # -- static-analysis queries --------------------------------------------

    def covers(self, interval):
        """True when every value of ``interval`` is within this type's
        representable range (MSB side only; the grid is ignored)."""
        return self.range_interval().contains(Interval.coerce(interval))

    def discarded_frac_bits(self, f_in):
        """Fractional bits a value on the ``2**-f_in`` grid loses when
        quantized to this type (0 when the grid is fine enough)."""
        return max(0, int(f_in) - self.f)

    def lossless_from(self, other):
        """True when every value of ``other`` passes through this type
        unchanged: the fractional grid is at least as fine and the whole
        range of ``other`` is representable."""
        return (self.f >= other.f
                and self.covers(other.range_interval()))

    # -- quantization --------------------------------------------------------

    @property
    def kernel(self):
        """Compiled scalar fast path: ``kernel(v) -> (qvalue, overflowed)``.

        Built lazily from :mod:`repro.core.kernels` and shared between
        all types with the same characteristic.  Bit-identical to
        :meth:`quantize_info` (property-tested).
        """
        k = self._kernel
        if k is None:
            from repro.core.kernels import scalar_kernel
            k = self._kernel = scalar_kernel(self.n, self.f, self.signed,
                                             self.msbspec, self.lsbspec)
        return k

    @property
    def saturating(self):
        """This type with ``msbspec="saturate"`` (cached; self if already
        saturating).

        The per-assignment hot path of ``error``-mode signals quantizes
        through the saturating variant and flags the overflow — this
        cache removes the former per-assignment :meth:`with_` call.
        """
        if self.msbspec == "saturate":
            return self
        sat = self._saturating
        if sat is None:
            sat = self._saturating = self.with_(msbspec="saturate")
        return sat

    def quantize_info(self, value, name=None):
        """Quantize ``value`` per this type, reporting overflow and error."""
        return _q.quantize_info(value, self.n, self.f, signed=self.signed,
                                overflow=self.msbspec, rounding=self.lsbspec,
                                name=name)

    def quantize(self, value):
        """Quantize ``value`` through the compiled kernel (value only)."""
        return self.kernel(value)[0]

    def quantize_array(self, values, out_overflow=None, out=None):
        """Vectorized quantization of a numpy array."""
        return _q.quantize_array(values, self.n, self.f, signed=self.signed,
                                 overflow=self.msbspec, rounding=self.lsbspec,
                                 out_overflow=out_overflow, out=out)

    def is_representable(self, value):
        """True when ``value`` lies exactly on this type's grid."""
        info = _q.quantize_info(value, self.n, self.f, signed=self.signed,
                                overflow="saturate", rounding="round")
        return not info.overflowed and info.error == 0.0

    # -- derivation -----------------------------------------------------------

    def with_(self, name=None, n=None, f=None, vtype=None, msbspec=None,
              lsbspec=None):
        """Copy with selected fields replaced."""
        return DType(
            self.name if name is None else name,
            self.n if n is None else n,
            self.f if f is None else f,
            self.vtype if vtype is None else vtype,
            self.msbspec if msbspec is None else msbspec,
            self.lsbspec if lsbspec is None else lsbspec,
        )

    @classmethod
    def from_range(cls, name, lo, hi, f, vtype="tc", msbspec="saturate",
                   lsbspec="round"):
        """Smallest type with ``f`` fractional bits covering ``[lo, hi]``."""
        signed = _VTYPE_ALIASES.get(vtype) == "tc"
        msb = word.required_msb(lo, hi, signed=signed)
        if msb is None:
            msb = 0
        if msb == float("inf"):
            raise DTypeError("cannot derive a type from an unbounded range")
        # Keep the word at least one bit wide (a sub-unit range with few
        # fractional bits would otherwise give an empty word).
        msb = max(msb, (0 if signed else 1) - f)
        n = word.wordlength_for_msb(msb, f, signed=signed)
        return cls(name, n, f, vtype, msbspec, lsbspec)

    @classmethod
    def from_spec(cls, spec, name=None):
        """Parse a compact specifier produced by :meth:`spec`.

        Accepts both the full form ``<8,5,tc,sa,ro>`` and the short
        paper form ``<8,5,tc>`` (defaults: saturate, round).
        """
        text = spec.strip()
        if not (text.startswith("<") and text.endswith(">")):
            raise DTypeError("bad dtype spec %r" % (spec,))
        parts = [p.strip() for p in text[1:-1].split(",")]
        if len(parts) not in (3, 5):
            raise DTypeError("bad dtype spec %r" % (spec,))
        n, f, vtype = int(parts[0]), int(parts[1]), parts[2]
        msbspec = "saturate"
        lsbspec = "round"
        if len(parts) == 5:
            msb_map = {"sa": "saturate", "wr": "wrap", "er": "error",
                       "st": "saturate"}
            lsb_map = {"ro": "round", "fl": "floor", "ce": "ceil",
                       "tr": "trunc", "rd": "round"}
            try:
                msbspec = msb_map[parts[3]]
                lsbspec = lsb_map[parts[4]]
            except KeyError:
                raise DTypeError("bad dtype spec %r" % (spec,)) from None
        return cls(name if name is not None else spec, n, f, vtype,
                   msbspec, lsbspec)

    @classmethod
    def from_cast_label(cls, label, name="cast"):
        """Parse a traced cast-op label (``cast<8,5,tc,sa,ro>``).

        Returns ``None`` when ``label`` is not a cast operation, so
        callers can use it as a combined test-and-parse.
        """
        if not _CAST_LABEL_RE.match(label):
            return None
        return cls.from_spec(label[4:], name=name)

    @classmethod
    def from_positions(cls, name, msb, lsb, vtype="tc", msbspec="saturate",
                       lsbspec="round"):
        """Type from MSB position and LSB position (fractional bits)."""
        signed = _VTYPE_ALIASES.get(vtype) == "tc"
        n = word.wordlength_for_msb(msb, lsb, signed=signed)
        return cls(name, n, lsb, vtype, msbspec, lsbspec)

    # -- dunder ---------------------------------------------------------------

    def __reduce__(self):
        # Rebuild from the six defining fields: the lazy caches hold
        # closures, which must never travel through pickle (the parallel
        # runner ships DTypes to worker processes and back).
        return (DType, (self.name, self.n, self.f, self.vtype,
                        self.msbspec, self.lsbspec))

    def __eq__(self, other):
        if not isinstance(other, DType):
            return NotImplemented
        return (self.n == other.n and self.f == other.f
                and self.vtype == other.vtype
                and self.msbspec == other.msbspec
                and self.lsbspec == other.lsbspec)

    def __hash__(self):
        return hash((self.n, self.f, self.vtype, self.msbspec, self.lsbspec))

    def spec(self):
        """Compact ``<n,f,vtype,msb,lsb>`` specifier string."""
        return "<%d,%d,%s,%s,%s>" % (self.n, self.f, self.vtype,
                                     self.msbspec[:2], self.lsbspec[:2])

    def __repr__(self):
        return "DType(%r, %d, %d, %r, %r, %r)" % (
            self.name, self.n, self.f, self.vtype, self.msbspec, self.lsbspec)
