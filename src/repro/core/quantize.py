"""Value-domain quantization.

Maps real values onto the fixed-point grid defined by a wordlength ``n``
and fractional bit count ``f``, applying one of the paper's LSB rounding
modes (``round`` / ``floor``, plus the common extensions ``ceil`` and
``trunc``) followed by one of the MSB overflow modes (``wrap`` /
``saturate`` / ``error``).

Both a scalar path (used by the signal objects during simulation) and a
vectorized numpy path (used by block-level DSP reference models and the
throughput benchmarks) are provided; they produce bit-identical results.
"""

from __future__ import annotations

import math
from typing import NamedTuple

import numpy as np

from repro.core import word
from repro.core.errors import (DTypeError, FixedPointOverflowError,
                               NonFiniteError)
from repro.core.kernels import _CACHE as _kernel_cache
from repro.core.kernels import scalar_kernel as _scalar_kernel

__all__ = [
    "ROUNDING_MODES",
    "OVERFLOW_MODES",
    "QuantizeResult",
    "round_to_code",
    "quantize",
    "quantize_info",
    "quantize_array",
    "quantization_step",
    "value_min",
    "value_max",
]

#: LSB modes.  ``round`` is round-half-up (add half an LSB, floor) as used
#: by DSP hardware; ``floor`` truncates toward minus infinity; ``trunc``
#: truncates toward zero; ``ceil`` rounds toward plus infinity.
ROUNDING_MODES = ("round", "floor", "ceil", "trunc")

#: MSB modes, matching the paper's ``wr`` / ``st`` / ``er`` specifiers.
OVERFLOW_MODES = ("wrap", "saturate", "error")


class QuantizeResult(NamedTuple):
    """Outcome of a single quantization."""

    value: float  #: quantized real value
    code: int  #: integer code (value * 2**f)
    overflowed: bool  #: True when MSB handling modified the value
    error: float  #: quantized value minus the original value


def quantization_step(f):
    """Weight of one LSB: ``2**-f``."""
    return math.ldexp(1.0, -f)


def value_min(n, f, signed=True):
    """Smallest representable real value of the format."""
    return word.int_min(n, signed) * quantization_step(f)


def value_max(n, f, signed=True):
    """Largest representable real value of the format."""
    return word.int_max(n, signed) * quantization_step(f)


def round_to_code(value, f, rounding="round"):
    """Map a real value to an (unbounded) integer code at ``f`` fractional bits."""
    scaled = value * math.ldexp(1.0, f)
    if rounding == "round":
        return math.floor(scaled + 0.5)
    if rounding == "floor":
        return math.floor(scaled)
    if rounding == "ceil":
        return math.ceil(scaled)
    if rounding == "trunc":
        return math.trunc(scaled)
    raise DTypeError("unknown rounding mode %r (expected one of %s)"
                     % (rounding, ", ".join(ROUNDING_MODES)))


def quantize_info(value, n, f, signed=True, overflow="saturate",
                  rounding="round", name=None):
    """Quantize ``value`` and report what happened.

    Returns a :class:`QuantizeResult`.  In ``error`` overflow mode a
    :class:`FixedPointOverflowError` is raised when the rounded value does
    not fit — this is the paper's signal to the designer to widen the type
    or pick another MSB mode.
    """
    if overflow not in OVERFLOW_MODES:
        raise DTypeError("unknown overflow mode %r (expected one of %s)"
                         % (overflow, ", ".join(OVERFLOW_MODES)))
    if not math.isfinite(value):
        raise NonFiniteError(
            "cannot quantize non-finite value %r%s; enable a guard policy "
            "(DesignContext guard_action='record') to sanitize it"
            % (value, "" if name is None else " (signal %s)" % name),
            signal=name, value=value)
    code = round_to_code(value, f, rounding)
    overflowed = not word.fits(code, n, signed)
    if overflowed:
        if overflow == "error":
            raise FixedPointOverflowError(
                "value %r overflows <%d,%d,%s>%s"
                % (value, n, f, "tc" if signed else "us",
                   "" if name is None else " on signal %s" % name),
                signal=name, value=value)
        if overflow == "saturate":
            code = word.saturate_code(code, n, signed)
        else:  # wrap
            code = word.wrap_code(code, n, signed)
    qval = code * quantization_step(f)
    return QuantizeResult(qval, code, overflowed, qval - value)


def quantize(value, n, f, signed=True, overflow="saturate", rounding="round"):
    """Quantize ``value``; return only the quantized real value.

    Dispatches to a compiled per-format kernel (see
    :mod:`repro.core.kernels`); bit-identical to
    ``quantize_info(...).value``.
    """
    kernel = _kernel_cache.get((n, f, signed, overflow, rounding))
    if kernel is None:
        kernel = _scalar_kernel(n, f, signed, overflow, rounding)
    return kernel(value)[0]


class _VectorConsts:
    """Hoisted per-format constants of the vectorized path.

    ``np.ldexp``, the integer code bounds and the wrap span used to be
    recomputed on every :func:`quantize_array` call; one instance per
    ``(n, f, signed)`` format now carries them ready-made.
    """

    __slots__ = ("scale", "inv", "lo", "hi", "span", "offset")

    def __init__(self, n, f, signed):
        self.scale = float(np.ldexp(1.0, f))
        self.inv = float(np.ldexp(1.0, -f))
        self.lo = float(word.int_min(n, signed))
        self.hi = float(word.int_max(n, signed))
        self.span = float(1 << n)
        self.offset = float(1 << (n - 1)) if signed else 0.0


_VCONSTS = {}


def _vector_consts(n, f, signed):
    key = (n, f, signed)
    vc = _VCONSTS.get(key)
    if vc is None:
        vc = _VCONSTS[key] = _VectorConsts(n, f, signed)
    return vc


def _round_codes(scaled, rounding):
    """Round pre-scaled values to codes, in place."""
    if rounding == "round":
        scaled += 0.5
        return np.floor(scaled, out=scaled)
    if rounding == "floor":
        return np.floor(scaled, out=scaled)
    if rounding == "ceil":
        return np.ceil(scaled, out=scaled)
    if rounding == "trunc":
        return np.trunc(scaled, out=scaled)
    raise DTypeError("unknown rounding mode %r (expected one of %s)"
                     % (rounding, ", ".join(ROUNDING_MODES)))


def quantize_array(values, n, f, signed=True, overflow="saturate",
                   rounding="round", out_overflow=None, out=None):
    """Vectorized :func:`quantize` over a numpy array.

    Codes are kept in float64, which is exact for wordlengths up to 53
    bits — far beyond any practical DSP datapath.  When ``out_overflow``
    is a one-element list, the number of overflowed elements is appended
    to it (cheap way to get the count without a second pass).

    ``out`` may name a preallocated float64 buffer of the input's shape;
    the quantized values land there (and are returned) without any
    intermediate allocation beyond the working copy — the fast path for
    block reference models that quantize the same-sized frame each call.
    """
    if overflow not in OVERFLOW_MODES:
        raise DTypeError("unknown overflow mode %r (expected one of %s)"
                         % (overflow, ", ".join(OVERFLOW_MODES)))
    if n > 53:
        raise DTypeError("vectorized path supports wordlengths up to 53 bits")
    vc = _vector_consts(n, f, signed)
    arr = np.asarray(values, dtype=np.float64)
    if not np.isfinite(arr).all():
        n_bad_vals = int(np.count_nonzero(~np.isfinite(arr)))
        raise NonFiniteError(
            "cannot quantize %d non-finite value(s); sanitize the array "
            "(np.nan_to_num) or fix the producer" % n_bad_vals)
    if out is not None:
        if (getattr(out, "shape", None) != arr.shape
                or getattr(out, "dtype", None) != np.float64):
            raise DTypeError("out buffer must be float64 with shape %r"
                             % (arr.shape,))
        codes = np.multiply(arr, vc.scale, out=out)
    else:
        codes = arr * vc.scale
    codes = _round_codes(codes, rounding)
    lo = vc.lo
    hi = vc.hi
    bad = (codes < lo) | (codes > hi)
    n_bad = int(np.count_nonzero(bad))
    if n_bad:
        if overflow == "error":
            raise FixedPointOverflowError(
                "%d values overflow <%d,%d,%s>"
                % (n_bad, n, f, "tc" if signed else "us"))
        if overflow == "saturate":
            np.clip(codes, lo, hi, out=codes)
        else:  # wrap
            # Reduce modulo the span *before* applying the signed offset:
            # fmod of a float is exact, but offset + a code near 2**60
            # is not (the sum rounds to a multiple of the ulp, which can
            # exceed the span).  The remainder is small, so the offset
            # arithmetic below stays exact.
            np.mod(codes, vc.span, out=codes)
            codes += vc.offset
            np.mod(codes, vc.span, out=codes)
            codes -= vc.offset
    if out_overflow is not None:
        out_overflow.append(n_bad)
    codes *= vc.inv
    return codes
