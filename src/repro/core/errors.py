"""Exception hierarchy for the fixed-point refinement environment.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DTypeError(ReproError):
    """An invalid fixed-point type specification was given."""


class NonFiniteError(DTypeError):
    """A NaN or infinity reached a quantizer or a monitored signal.

    Non-finite values have no fixed-point representation; silently
    quantizing them would poison every downstream statistic.  The guard
    layer (see :mod:`repro.robust.guards`) decides whether an offending
    assignment raises this error, is recorded and sanitized, or is
    sanitized silently.
    """

    def __init__(self, message, signal=None, value=None):
        super().__init__(message)
        self.signal = signal
        self.value = value


class FixedPointOverflowError(ReproError):
    """A value exceeded the representable range of an ``error``-mode type.

    This mirrors the paper's ``error`` MSB mode: the simulation stops (or
    records, depending on the design context policy) so the designer can
    either increase the wordlength or select another MSB mode.
    """

    def __init__(self, message, signal=None, value=None, dtype=None):
        super().__init__(message)
        self.signal = signal
        self.value = value
        self.dtype = dtype


class RangeExplosionError(ReproError):
    """Quasi-analytical range propagation exploded on a feedback signal.

    The paper's remedy is an explicit ``sig.range(lo, hi)`` annotation or a
    saturating type definition on the offending signal.
    """

    def __init__(self, message, signals=()):
        super().__init__(message)
        self.signals = tuple(signals)


class DesignError(ReproError):
    """A design description is malformed (duplicate names, missing signals...)."""


class RangeDivergenceError(RangeExplosionError, DesignError):
    """Analytical SFG propagation diverged, with the first offender named.

    Unlike the plain :class:`RangeExplosionError` (which only lists the
    exploded signals), this error pinpoints *which* node first widened to
    infinity and in which fixpoint round — the actionable location for a
    ``range()`` annotation or a saturating type.
    """

    def __init__(self, message, signal=None, round=None, signals=()):
        super().__init__(message, signals=signals)
        #: name of the signal whose interval first became unbounded
        self.signal = signal
        #: fixpoint round at which the divergence first appeared
        self.round = round


class DivergenceError(ReproError):
    """The coupled float/fixed simulation diverged on a feedback signal.

    The paper's remedy is an explicit ``sig.error(q)`` annotation that
    replaces the tracked difference error with a uniform random variable.
    """

    def __init__(self, message, signals=()):
        super().__init__(message)
        self.signals = tuple(signals)


class SimulationError(ReproError):
    """The simulation engine encountered an unrecoverable condition."""


class ChannelEmpty(SimulationError):
    """A processor performed ``get()`` on an empty channel."""


class ChannelFull(SimulationError):
    """A processor performed ``put()`` on a bounded channel that is full."""


class WatchdogTimeout(SimulationError):
    """A simulation exceeded its cycle or wall-clock budget.

    Raised by the watchdog attached to a :class:`DesignContext` or passed
    to :meth:`Engine.run`; prevents stalled feedback loops or endless
    free-running processors from hanging the refinement flow.
    """

    def __init__(self, message, cycles=None, elapsed=None):
        super().__init__(message)
        self.cycles = cycles
        self.elapsed = elapsed


class DeadlineExceeded(WatchdogTimeout):
    """A single simulation job ran past its per-job wall-clock deadline.

    Raised inside a worker (or the serial runner) by the signal-based
    alarm armed from :class:`repro.parallel.runner.SimConfig.deadline_seconds`.
    Subclasses :class:`WatchdogTimeout` so existing watchdog handling
    (graceful sample-halving, diagnostics) applies unchanged.
    """

    def __init__(self, message, deadline=None, label=None):
        super().__init__(message)
        self.deadline = deadline
        self.label = label


class WorkerCrashError(SimulationError):
    """A pool worker died (crash/kill) while executing a simulation job.

    Parent-side representation of a quarantined poison job: the worker
    process is gone, so there is no original exception to re-raise.
    Raised by :func:`repro.parallel.run_simulations` for jobs without
    ``catch_errors`` once the rest of the batch has completed (and been
    journaled).
    """

    def __init__(self, message, label=None, attempts=None):
        super().__init__(message)
        self.label = label
        self.attempts = attempts


class JournalError(ReproError):
    """A simulation outcome journal is unreadable or incompatible.

    Raised when a journal file carries an unknown format/version header
    or when corruption is detected *before* the torn tail (append-only
    journals can only legitimately be damaged at the end).
    """


class DeadlockError(SimulationError):
    """Every live processor spun without any channel activity.

    The engine's stall detector raises this when ``stall_limit``
    consecutive cycles pass with zero FIFO traffic while processors are
    still alive — the cooperative-scheduling equivalent of a deadlock.
    """

    def __init__(self, message, processors=(), cycles=None):
        super().__init__(message)
        self.processors = tuple(processors)
        self.cycles = cycles


class RefinementError(ReproError):
    """The refinement flow could not converge or was misconfigured."""


class ServiceError(ReproError):
    """Base class for :mod:`repro.service` failures."""


class AdmissionError(ServiceError):
    """A submission was rejected at the service's admission boundary.

    Rejections are *deterministic load shedding*, not transient chaos:
    the service tells the caller exactly why it refused the job and —
    through :attr:`retry_after` — when a retry has a chance of being
    admitted.  Subclasses name the specific boundary that rejected.
    """

    def __init__(self, message, tenant=None, retry_after=None):
        super().__init__(message)
        #: tenant whose submission was rejected.
        self.tenant = tenant
        #: seconds until a retry can plausibly be admitted (None when
        #: unknown, e.g. waiting on another tenant's queue to drain).
        self.retry_after = retry_after


class QuotaExceeded(AdmissionError):
    """The tenant's token-bucket quota is exhausted.

    ``retry_after`` is the bucket's own estimate of when one token will
    have refilled — honoring it makes a well-behaved client converge on
    exactly its provisioned rate.
    """


class QueueFull(AdmissionError):
    """The service's bounded queue (tenant or global) is at capacity.

    Raised instead of accepting-and-degrading: a full queue sheds the
    *new* submission deterministically so already-accepted jobs keep
    their latency, and an unaffected tenant's lane stays unaffected.
    """


class CircuitOpen(AdmissionError):
    """The tenant's circuit breaker is open after repeated poison jobs.

    A tenant whose jobs keep crashing workers is isolated instead of
    being allowed to grind the shared pool; ``retry_after`` reports when
    the breaker half-opens for a probe job.
    """


class JobNotFound(ServiceError):
    """An unknown (or already evicted) job id was queried."""


class JobCancelled(ServiceError):
    """The queried job was cancelled before producing a result."""
