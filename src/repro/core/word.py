"""Integer (word-level) helpers for fixed-point codes.

A fixed-point number with total wordlength ``n`` and ``f`` fractional bits
is stored as an integer *code*; its real value is ``code * 2**-f``.  This
module manipulates codes only — the value-domain operations live in
:mod:`repro.core.quantize`.

Positions follow the paper's convention: bit weights are expressed with
respect to the binary point.  For a two's-complement type the most
significant bit (the sign bit) has weight ``-2**msb`` where
``msb = n - f - 1``; for an unsigned type the MSB weight is
``2**(msb - 1)`` with ``msb = n - f``.
"""

from __future__ import annotations

import math

from repro.core.errors import DTypeError

__all__ = [
    "int_min",
    "int_max",
    "wrap_code",
    "saturate_code",
    "fits",
    "bit_length_signed",
    "bit_length_unsigned",
    "required_msb",
    "wordlength_for_msb",
    "msb_of_wordlength",
    "shift_round_code",
    "to_bits",
    "from_bits",
]


def int_min(n, signed=True):
    """Smallest representable code for an ``n``-bit word."""
    if n < 1:
        raise DTypeError("wordlength must be >= 1, got %r" % (n,))
    return -(1 << (n - 1)) if signed else 0


def int_max(n, signed=True):
    """Largest representable code for an ``n``-bit word."""
    if n < 1:
        raise DTypeError("wordlength must be >= 1, got %r" % (n,))
    return (1 << (n - 1)) - 1 if signed else (1 << n) - 1


def wrap_code(code, n, signed=True):
    """Wrap ``code`` modulo ``2**n`` into the representable range.

    This models the hardware behaviour of simply discarding bits above the
    MSB (two's-complement wrap-around).
    """
    mask = (1 << n) - 1
    code &= mask
    if signed and code >= (1 << (n - 1)):
        code -= 1 << n
    return code


def saturate_code(code, n, signed=True):
    """Clamp ``code`` to the representable range of an ``n``-bit word."""
    lo = int_min(n, signed)
    hi = int_max(n, signed)
    if code < lo:
        return lo
    if code > hi:
        return hi
    return code


def fits(code, n, signed=True):
    """Return True when ``code`` is representable in ``n`` bits."""
    return int_min(n, signed) <= code <= int_max(n, signed)


def bit_length_signed(code):
    """Minimal two's-complement wordlength that represents ``code``."""
    if code >= 0:
        return code.bit_length() + 1
    return (-code - 1).bit_length() + 1


def bit_length_unsigned(code):
    """Minimal unsigned wordlength that represents ``code`` (>= 1)."""
    if code < 0:
        raise DTypeError("unsigned words cannot hold negative codes")
    return max(1, code.bit_length())


def required_msb(lo, hi, signed=True):
    """Smallest MSB position covering the real-valued range ``[lo, hi]``.

    For a signed (two's-complement) type the returned position ``m``
    satisfies ``-2**m <= lo`` and ``hi < 2**m``; for an unsigned type it
    satisfies ``0 <= lo`` and ``hi < 2**m``.  This is the paper's
    ``m(vmin, vmax)`` function used by the MSB refinement rules.

    Returns ``None`` when the range is degenerate at zero (the signal never
    carried a nonzero value, so no integer bits are needed and any MSB
    position works).
    """
    if math.isnan(lo) or math.isnan(hi):
        raise ValueError("range bounds must not be NaN")
    if lo > hi:
        raise ValueError("empty range: lo=%r > hi=%r" % (lo, hi))
    if not signed and lo < 0:
        raise DTypeError("unsigned range cannot include negative values")
    if lo == 0.0 and hi == 0.0:
        return None
    if math.isinf(lo) or math.isinf(hi):
        return math.inf

    m = -(1 << 62)
    if hi > 0:
        # hi < 2**m  <=>  m = frexp exponent of hi (frexp: hi = mant*2**e,
        # 0.5 <= mant < 1, hence 2**(e-1) <= hi < 2**e).
        _, e = math.frexp(hi)
        m = max(m, e)
    if lo < 0:
        mant, e = math.frexp(-lo)
        # -2**m <= lo  <=>  2**m >= -lo; exact powers of two fit with m=e-1.
        m = max(m, e - 1 if mant == 0.5 else e)
    return m


def wordlength_for_msb(msb, f, signed=True):
    """Total wordlength for MSB position ``msb`` and ``f`` fractional bits.

    Signed words carry the sign at weight ``-2**msb`` so
    ``n = msb + f + 1``; unsigned words span weights ``2**(msb-1)`` down to
    ``2**-f`` so ``n = msb + f``.
    """
    n = msb + f + (1 if signed else 0)
    if n < 1:
        raise DTypeError(
            "msb=%r with f=%r fractional bits gives empty word" % (msb, f)
        )
    return n


def msb_of_wordlength(n, f, signed=True):
    """Inverse of :func:`wordlength_for_msb`."""
    return n - f - (1 if signed else 0)


def needed_frac_bits(value, cap=64):
    """Smallest ``f >= 0`` such that ``value`` lies on the grid ``2**-f``.

    Uses the float mantissa directly (O(1)).  Values that do not
    terminate in binary (e.g. 0.11) return ``cap``.
    """
    if value == 0.0:
        return 0
    mant, e = math.frexp(abs(value))      # value = mant * 2**e, mant in [0.5, 1)
    m53 = int(mant * (1 << 53))           # exact: 2**52 <= m53 < 2**53
    trailing = (m53 & -m53).bit_length() - 1
    f = 53 - e - trailing
    return min(cap, max(0, f))


def shift_round_code(code, delta, rounding="round"):
    """Rescale an integer code by ``2**-delta`` with exact rounding.

    A value ``code * 2**-f_in`` re-expressed on the coarser grid
    ``2**-(f_in - delta)`` becomes ``shift_round_code(code, delta, mode)``
    — the pure-integer form of the float quantizer's rounding step (the
    scaled value is ``code / 2**delta``).  ``delta <= 0`` is a lossless
    left shift.  Modes match :mod:`repro.core.kernels` bit for bit:

    * ``round``  — round half up: ``floor(scaled + 0.5)``,
    * ``floor``  — toward minus infinity: arithmetic shift right,
    * ``ceil``   — toward plus infinity,
    * ``trunc``  — toward zero.

    >>> [shift_round_code(c, 1, "round") for c in (-3, -2, -1, 0, 1, 3)]
    [-1, -1, 0, 0, 1, 2]
    >>> [shift_round_code(c, 1, "trunc") for c in (-3, -1, 1, 3)]
    [-1, 0, 0, 1]
    >>> shift_round_code(3, -2)
    12
    """
    code = int(code)
    delta = int(delta)
    if delta <= 0:
        return code << -delta
    if rounding == "round":
        return (code + (1 << (delta - 1))) >> delta
    if rounding == "floor":
        return code >> delta
    if rounding == "ceil":
        return -((-code) >> delta)
    if rounding == "trunc":
        return code >> delta if code >= 0 else -((-code) >> delta)
    raise DTypeError("unknown rounding mode %r" % (rounding,))


def to_bits(code, n, signed=True):
    """Render ``code`` as an ``n``-character binary string (MSB first)."""
    if not fits(code, n, signed):
        raise DTypeError("code %r does not fit in %d bits" % (code, n))
    if code < 0:
        code += 1 << n
    return format(code, "0%db" % n)


def from_bits(bits, signed=True):
    """Parse a binary string produced by :func:`to_bits`."""
    n = len(bits)
    if n == 0 or any(b not in "01" for b in bits):
        raise DTypeError("invalid bit string %r" % (bits,))
    code = int(bits, 2)
    if signed and code >= (1 << (n - 1)):
        code -= 1 << n
    return code
