"""Compiled scalar quantizer kernels — the per-assignment fast path.

:func:`~repro.core.quantize.quantize_info` is the *reference*
implementation: readable, mode strings dispatched on every call, a
:class:`~repro.core.quantize.QuantizeResult` allocated per value.  That
is the right shape for reports and tests, but it is what every ``Sig``
assignment pays during a monitored simulation — and the paper's whole
argument is that simulation-based refinement stays close to
floating-point simulation speed.

This module compiles one specialized closure per fixed-point format
``(n, f, signed, overflow, rounding)``:

* the scale ``2**f``, inverse scale ``2**-f`` and integer code bounds
  are baked in as literals,
* rounding and overflow handling are selected once at build time, not
  per value,
* the kernel returns a plain ``(value, overflowed)`` tuple — no
  namedtuple, no string comparisons, no attribute lookups on the hot
  path.

Kernels are cached per format in a module-level table, so every
:class:`~repro.core.dtype.DType` (and every signal) with the same
characteristic shares one closure.  Bit-exactness against
``quantize_info`` is asserted by ``tests/test_property_kernels.py``
across all mode combinations.
"""

from __future__ import annotations

import math

from repro.core import word
from repro.core.errors import (DTypeError, FixedPointOverflowError,
                               NonFiniteError)

__all__ = ["scalar_kernel", "make_scalar_kernel", "kernel_cache_size"]

_ROUNDING = ("round", "floor", "ceil", "trunc")
_OVERFLOW = ("wrap", "saturate", "error")

#: (n, f, signed, overflow, rounding) -> compiled kernel closure.
_CACHE = {}


def make_scalar_kernel(n, f, signed=True, overflow="saturate",
                       rounding="round"):
    """Build a specialized ``kernel(value) -> (qvalue, overflowed)``.

    The closure raises :class:`NonFiniteError` on NaN/inf input and, in
    ``error`` overflow mode, :class:`FixedPointOverflowError` on codes
    outside the word — the same contract as ``quantize_info``.
    """
    n = int(n)
    f = int(f)
    if n < 1:
        raise DTypeError("wordlength must be >= 1, got %d" % n)
    if rounding not in _ROUNDING:
        raise DTypeError("unknown rounding mode %r (expected one of %s)"
                         % (rounding, ", ".join(_ROUNDING)))
    if overflow not in _OVERFLOW:
        raise DTypeError("unknown overflow mode %r (expected one of %s)"
                         % (overflow, ", ".join(_OVERFLOW)))

    scale = math.ldexp(1.0, f)
    inv = math.ldexp(1.0, -f)
    lo = word.int_min(n, signed)
    hi = word.int_max(n, signed)
    lo_val = lo * inv
    hi_val = hi * inv
    # Two's-complement wrap as pure integer arithmetic:
    # ((code + off) & mask) - off  ==  word.wrap_code(code, n, signed).
    mask = (1 << n) - 1
    off = (1 << (n - 1)) if signed else 0
    isfinite = math.isfinite
    floor = math.floor
    ceil = math.ceil
    trunc = math.trunc
    spec = "<%d,%d,%s>" % (n, f, "tc" if signed else "us")

    if rounding == "round":
        def to_code(v):
            return floor(v * scale + 0.5)
    elif rounding == "floor":
        def to_code(v):
            return floor(v * scale)
    elif rounding == "ceil":
        def to_code(v):
            return ceil(v * scale)
    else:  # trunc
        def to_code(v):
            return trunc(v * scale)

    def _bad(value):
        raise NonFiniteError(
            "cannot quantize non-finite value %r; enable a guard policy "
            "(DesignContext guard_action='record') to sanitize it"
            % (value,), value=value)

    if overflow == "saturate":
        def kernel(value):
            if not isfinite(value):
                _bad(value)
            code = to_code(value)
            if code > hi:
                return hi_val, True
            if code < lo:
                return lo_val, True
            return code * inv, False
    elif overflow == "wrap":
        def kernel(value):
            if not isfinite(value):
                _bad(value)
            code = to_code(value)
            if code > hi or code < lo:
                return (((code + off) & mask) - off) * inv, True
            return code * inv, False
    else:  # error
        def kernel(value):
            if not isfinite(value):
                _bad(value)
            code = to_code(value)
            if code > hi or code < lo:
                raise FixedPointOverflowError(
                    "value %r overflows %s" % (value, spec), value=value)
            return code * inv, False

    return kernel


def scalar_kernel(n, f, signed=True, overflow="saturate", rounding="round"):
    """Cached :func:`make_scalar_kernel` (one closure per format)."""
    key = (n, f, signed, overflow, rounding)
    kernel = _CACHE.get(key)
    if kernel is None:
        kernel = _CACHE[key] = make_scalar_kernel(n, f, signed, overflow,
                                                  rounding)
    return kernel


def kernel_cache_size():
    """Number of distinct compiled kernels (diagnostics)."""
    return len(_CACHE)
