"""Core fixed-point kernel: types, quantization, intervals, statistics."""

from repro.core.dtype import DType
from repro.core.errors import (
    ChannelEmpty,
    ChannelFull,
    DeadlockError,
    DesignError,
    DivergenceError,
    DTypeError,
    FixedPointOverflowError,
    NonFiniteError,
    RangeExplosionError,
    RefinementError,
    ReproError,
    SimulationError,
    WatchdogTimeout,
)
from repro.core.interval import Interval
from repro.core.quantize import (
    QuantizeResult,
    quantization_step,
    quantize_array,
    quantize_info,
)

# NOTE: the bare ``quantize`` function is intentionally NOT re-exported
# here — it would shadow the ``repro.core.quantize`` submodule attribute.
# Use ``repro.quantize`` (top level) or import from the submodule.
from repro.core.stats import ErrorStat, RangeStat
from repro.core.word import required_msb, wordlength_for_msb

__all__ = [
    "DType",
    "Interval",
    "QuantizeResult",
    "ErrorStat",
    "RangeStat",
    "quantize_array",
    "quantize_info",
    "quantization_step",
    "required_msb",
    "wordlength_for_msb",
    "ReproError",
    "DTypeError",
    "NonFiniteError",
    "FixedPointOverflowError",
    "RangeExplosionError",
    "DivergenceError",
    "SimulationError",
    "ChannelEmpty",
    "ChannelFull",
    "WatchdogTimeout",
    "DeadlockError",
    "DesignError",
    "RefinementError",
]
