"""Interval arithmetic for quasi-analytical range propagation.

The paper's quasi-analytical MSB method propagates value ranges through
the overloaded arithmetic operators (Section 4.1).  :class:`Interval`
implements that propagation: each operator returns the tightest interval
containing every possible result of applying the operation to values from
the operand intervals.

Intervals may be *empty* (no value observed yet) or unbounded (``inf``
end-points); unbounded intervals are how MSB explosion on feedback
signals manifests before the refinement flow flags it.
"""

from __future__ import annotations

import math

__all__ = ["Interval", "EMPTY", "FULL", "fast_interval",
           "iv_add", "iv_sub", "iv_mul", "iv_neg"]


def _mul_end(a, b):
    """Multiply interval end-points, defining 0 * inf = 0.

    The convention is correct for interval products: a factor that is
    exactly zero annihilates the other regardless of its magnitude.
    """
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


class Interval:
    """A closed real interval ``[lo, hi]``, possibly empty or unbounded."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo=None, hi=None):
        if lo is None and hi is None:
            # Empty interval.
            self.lo = math.inf
            self.hi = -math.inf
            return
        if hi is None:
            hi = lo
        lo = float(lo)
        hi = float(hi)
        if math.isnan(lo) or math.isnan(hi):
            raise ValueError("interval bounds must not be NaN")
        if lo > hi:
            raise ValueError("invalid interval [%r, %r]" % (lo, hi))
        self.lo = lo
        self.hi = hi

    # -- constructors ----------------------------------------------------

    def copy(self):
        """Independent snapshot of this interval."""
        new = Interval.__new__(Interval)
        new.lo = self.lo
        new.hi = self.hi
        return new

    @classmethod
    def empty(cls):
        return cls()

    @classmethod
    def full(cls):
        return cls(-math.inf, math.inf)

    @classmethod
    def point(cls, v):
        return cls(v, v)

    @classmethod
    def coerce(cls, other):
        """Interval from an Interval, scalar, or (lo, hi) tuple."""
        if isinstance(other, Interval):
            return other
        if isinstance(other, tuple):
            return cls(*other)
        return cls.point(other)

    # -- predicates -------------------------------------------------------

    @property
    def is_empty(self):
        return self.lo > self.hi

    @property
    def is_finite(self):
        return (not self.is_empty
                and math.isfinite(self.lo) and math.isfinite(self.hi))

    @property
    def width(self):
        if self.is_empty:
            return 0.0
        return self.hi - self.lo

    @property
    def max_abs(self):
        if self.is_empty:
            return 0.0
        return max(abs(self.lo), abs(self.hi))

    def contains(self, v):
        if isinstance(v, Interval):
            return v.is_empty or (self.lo <= v.lo and v.hi <= self.hi)
        return self.lo <= v <= self.hi

    def issubset(self, other):
        """True when every value of this interval lies in ``other``.

        The empty interval is a subset of everything.  Used by the static
        analyzer to compare propagated ranges against declared type
        ranges without simulation values.
        """
        return Interval.coerce(other).contains(self)

    def __eq__(self, other):
        if not isinstance(other, Interval):
            return NotImplemented
        if self.is_empty and other.is_empty:
            return True
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self):
        if self.is_empty:
            return hash("empty-interval")
        return hash((self.lo, self.hi))

    def __repr__(self):
        if self.is_empty:
            return "Interval()"
        return "Interval(%g, %g)" % (self.lo, self.hi)

    # -- lattice operations ------------------------------------------------

    def union(self, other):
        other = Interval.coerce(other)
        if self.is_empty:
            return Interval(other.lo, other.hi) if not other.is_empty else Interval()
        if other.is_empty:
            return Interval(self.lo, self.hi)
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    __or__ = union

    def intersect(self, other):
        other = Interval.coerce(other)
        if self.is_empty or other.is_empty:
            return Interval()
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return Interval()
        return Interval(lo, hi)

    __and__ = intersect

    def clip(self, other):
        """Clamp this interval into ``other`` (saturation in range domain).

        Unlike :meth:`intersect`, a disjoint interval collapses onto the
        nearest bound of ``other`` rather than becoming empty — exactly
        what a saturating quantizer does to out-of-range values.
        """
        other = Interval.coerce(other)
        if self.is_empty or other.is_empty:
            return Interval()
        lo = min(max(self.lo, other.lo), other.hi)
        hi = max(min(self.hi, other.hi), other.lo)
        return Interval(lo, hi)

    # -- arithmetic --------------------------------------------------------

    def _binary(self, other, fn):
        other = Interval.coerce(other)
        if self.is_empty or other.is_empty:
            return Interval()
        return fn(other)

    def __add__(self, other):
        return iv_add(self, Interval.coerce(other))

    __radd__ = __add__

    def __sub__(self, other):
        return iv_sub(self, Interval.coerce(other))

    def __rsub__(self, other):
        return iv_sub(Interval.coerce(other), self)

    def __mul__(self, other):
        return iv_mul(self, Interval.coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        def div(o):
            if o.lo <= 0.0 <= o.hi:
                # Divisor range crosses (or touches) zero: unbounded result.
                return Interval.full()
            quotients = (self.lo / o.lo, self.lo / o.hi,
                         self.hi / o.lo, self.hi / o.hi)
            return Interval(min(quotients), max(quotients))
        return self._binary(other, div)

    def __rtruediv__(self, other):
        return Interval.coerce(other) / self

    def __neg__(self):
        return iv_neg(self)

    def __abs__(self):
        if self.is_empty:
            return Interval()
        if self.lo >= 0:
            return Interval(self.lo, self.hi)
        if self.hi <= 0:
            return Interval(-self.hi, -self.lo)
        return Interval(0.0, max(-self.lo, self.hi))

    def scale_pow2(self, k):
        """Multiply by ``2**k`` (arithmetic shift)."""
        factor = math.ldexp(1.0, k)
        if self.is_empty:
            return Interval()
        lo = self.lo * factor
        hi = self.hi * factor
        return Interval(lo, hi)

    def __lshift__(self, k):
        return self.scale_pow2(int(k))

    def __rshift__(self, k):
        return self.scale_pow2(-int(k))

    def power(self, k):
        """Raise to a non-negative integer power."""
        k = int(k)
        if k < 0:
            raise ValueError("negative powers are not supported")
        if self.is_empty:
            return Interval()
        if k == 0:
            return Interval.point(1.0)
        if k % 2 == 1:
            return Interval(self.lo ** k, self.hi ** k)
        mags = abs(self)
        return Interval(mags.lo ** k, mags.hi ** k)

    def minimum(self, other):
        return self._binary(other, lambda o: Interval(min(self.lo, o.lo),
                                                      min(self.hi, o.hi)))

    def maximum(self, other):
        return self._binary(other, lambda o: Interval(max(self.lo, o.lo),
                                                      max(self.hi, o.hi)))

    def widen_to(self, other):
        """Widening operator for fixpoint iteration: any bound that moved
        past the previous one jumps to infinity.

        Used by the analytical SFG propagation to force termination on
        feedback loops (the paper's MSB explosion then shows up as an
        unbounded interval).
        """
        other = Interval.coerce(other)
        if self.is_empty:
            return Interval(other.lo, other.hi) if not other.is_empty else Interval()
        if other.is_empty:
            return Interval(self.lo, self.hi)
        lo = self.lo if other.lo >= self.lo else -math.inf
        hi = self.hi if other.hi <= self.hi else math.inf
        return Interval(lo, hi)


#: Shared empty interval (immutable by convention).
EMPTY = Interval()

#: Shared unbounded interval.
FULL = Interval.full()


# -- hot-path helpers ---------------------------------------------------------
#
# The overloaded-operator simulation creates one interval per arithmetic
# operation per sample; these functions are the allocation-lean core the
# dunders (and repro.signal.expr directly) dispatch to.  They assume both
# operands are Interval instances — coercion stays in the dunders.

def fast_interval(lo, hi):
    """Interval from known-good float bounds, skipping validation.

    Internal fast path: callers guarantee ``lo <= hi`` (or the empty
    convention ``inf > -inf``) and non-NaN bounds.
    """
    new = Interval.__new__(Interval)
    new.lo = lo
    new.hi = hi
    return new


def iv_add(a, b):
    if a.lo > a.hi or b.lo > b.hi:
        return EMPTY
    lo = a.lo + b.lo
    hi = a.hi + b.hi
    if lo != lo or hi != hi:
        raise ValueError("interval bounds must not be NaN")
    return fast_interval(lo, hi)


def iv_sub(a, b):
    if a.lo > a.hi or b.lo > b.hi:
        return EMPTY
    lo = a.lo - b.hi
    hi = a.hi - b.lo
    if lo != lo or hi != hi:
        raise ValueError("interval bounds must not be NaN")
    return fast_interval(lo, hi)


def iv_mul(a, b):
    if a.lo > a.hi or b.lo > b.hi:
        return EMPTY
    p1 = _mul_end(a.lo, b.lo)
    p2 = _mul_end(a.lo, b.hi)
    p3 = _mul_end(a.hi, b.lo)
    p4 = _mul_end(a.hi, b.hi)
    lo = p1
    hi = p1
    if p2 < lo:
        lo = p2
    elif p2 > hi:
        hi = p2
    if p3 < lo:
        lo = p3
    elif p3 > hi:
        hi = p3
    if p4 < lo:
        lo = p4
    elif p4 > hi:
        hi = p4
    return fast_interval(lo, hi)


def iv_neg(a):
    if a.lo > a.hi:
        return EMPTY
    return fast_interval(-a.hi, -a.lo)
