"""Running statistics accumulators.

Two accumulators back the paper's monitors:

* :class:`RangeStat` — the statistic-based MSB monitor: per-signal
  assignment count and min/max of the assigned values.
* :class:`ErrorStat` — the LSB error monitor: mean, standard deviation and
  maximum absolute value of the float/fixed difference error, computed
  online with Welford's algorithm (numerically stable over millions of
  samples).
"""

from __future__ import annotations

import math

from repro.core import word

__all__ = ["RangeStat", "ErrorStat"]


class RangeStat:
    """Tracks count, minimum, maximum and finest grid of observed values.

    ``frac_bits`` is the smallest number of fractional bits that would
    represent every observed value exactly (saturating at ``FRAC_CAP``
    for values that do not terminate in binary).  The LSB refinement
    rules use it for error-free signals such as slicer outputs.
    """

    __slots__ = ("count", "min", "max", "frac_bits")

    FRAC_CAP = 48

    def __init__(self):
        self.reset()

    def reset(self):
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self.frac_bits = 0

    def update(self, value):
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        fb = self.frac_bits
        if fb < self.FRAC_CAP:
            # Values already on the current 2**-fb grid (the common case
            # once a signal is quantized) cannot raise frac_bits.
            scaled = math.ldexp(value, fb)
            if scaled % 1.0 != 0.0:
                nfb = word.needed_frac_bits(value, cap=self.FRAC_CAP)
                if nfb > fb:
                    self.frac_bits = nfb

    def update_many(self, values):
        for v in values:
            self.update(v)

    @property
    def is_empty(self):
        return self.count == 0

    @property
    def max_abs(self):
        if self.is_empty:
            return 0.0
        return max(abs(self.min), abs(self.max))

    def required_msb(self, signed=True):
        """Paper's ``m(vmin, vmax)`` on the observed range (None if empty/zero)."""
        if self.is_empty:
            return None
        return word.required_msb(self.min, self.max, signed=signed)

    def merge(self, other):
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.frac_bits = max(self.frac_bits, other.frac_bits)

    def as_dict(self):
        return {"count": self.count, "min": self.min, "max": self.max,
                "frac_bits": self.frac_bits}

    def __repr__(self):
        if self.is_empty:
            return "RangeStat(empty)"
        return "RangeStat(n=%d, min=%g, max=%g)" % (self.count, self.min,
                                                    self.max)


class ErrorStat:
    """Welford mean/variance plus max-abs tracking of a difference error."""

    __slots__ = ("count", "mean", "_m2", "max_abs")

    def __init__(self):
        self.reset()

    def reset(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.max_abs = 0.0

    def update(self, value):
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        a = abs(value)
        if a > self.max_abs:
            self.max_abs = a

    def update_many(self, values):
        for v in values:
            self.update(v)

    @property
    def is_empty(self):
        return self.count == 0

    @property
    def variance(self):
        """Population variance of the observed errors."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self):
        return math.sqrt(self.variance)

    @property
    def rms(self):
        """Root-mean-square error (combines bias and spread)."""
        return math.sqrt(self.variance + self.mean * self.mean)

    def merge(self, other):
        """Chan et al. parallel combination of two Welford accumulators."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.max_abs = other.max_abs
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.max_abs = max(self.max_abs, other.max_abs)

    def as_dict(self):
        return {"count": self.count, "mean": self.mean, "std": self.std,
                "max_abs": self.max_abs}

    def __repr__(self):
        if self.is_empty:
            return "ErrorStat(empty)"
        return "ErrorStat(n=%d, mean=%.3g, std=%.3g, max_abs=%.3g)" % (
            self.count, self.mean, self.std, self.max_abs)
