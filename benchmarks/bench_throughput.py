"""A3 — Performance of the quantization kernel and the monitored simulator.

Not a paper artifact; establishes the cost envelope of this environment:

* scalar quantization calls (the per-assignment hot path),
* vectorized numpy quantization (block reference models),
* monitored LMS simulation samples per second,
* compiled-engine batch throughput (``repro.compile``, 2048 lanes),
* sensitivity-sweep wall clock, serial vs parallel fan-out.

Two entry points:

* **pytest-benchmark tests** (``pytest benchmarks/bench_throughput.py``)
  with the usual multi-round statistics;
* **a standalone trajectory harness**::

      PYTHONPATH=src python benchmarks/bench_throughput.py [--quick]
          [--out BENCH_throughput.json] [--check BENCH_throughput.json]

  which emits machine-readable ``BENCH_throughput.json`` so each PR's
  perf delta stays visible, and with ``--check`` fails (exit 1) on a
  >30% regression against a committed baseline file.  Regression checks
  are normalized by the reference-path speed ratio between the two
  machines, so a slower CI box does not raise false alarms.
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if os.path.isdir(_src) and _src not in sys.path:
        sys.path.insert(0, _src)

import numpy as np

from repro.core.dtype import DType
from repro.core.quantize import quantize, quantize_array, quantize_info
from repro.dsp.lms import LmsEqualizerDesign
from repro.parallel import default_workers
from repro.refine.sensitivity import analyze_sensitivity
from repro.signal import DesignContext

T = DType("T", 12, 8, "tc", "saturate", "round")

#: Pre-PR numbers measured on the original (namedtuple-dispatch) code
#: path, same machine class as the committed JSON — the origin of the
#: perf trajectory.  Do not update these when optimizing; they are the
#: "before" column.
PRE_PR_BASELINE = {
    "scalar_quantize_ns": 866.4,
    "vector_quantize_msps": 82.5,
    "lms_samples_per_s": 7477.3,
}

#: Allowed slow-down vs the committed baseline before --check fails.
REGRESSION_TOLERANCE = 0.30

#: Maximum throughput loss (percent) the *disabled* observability layer
#: may cost the monitored LMS path.  The design goal is zero: disabling
#: repro.obs restores the exact original ``Sig._record`` code object, so
#: anything beyond measurement noise is a regression in the enable/
#: disable switch itself.
OBS_DISABLED_OVERHEAD_PCT = 2.0


# -- pytest-benchmark tests --------------------------------------------------

def test_scalar_quantize(benchmark):
    values = np.random.default_rng(0).uniform(-8, 8, size=1000).tolist()

    def work():
        total = 0.0
        for v in values:
            total += quantize(v, 12, 8)
        return total

    benchmark(work)


def test_scalar_kernel(benchmark):
    """The bound compiled kernel — the actual per-assignment hot path."""
    values = np.random.default_rng(0).uniform(-8, 8, size=1000).tolist()
    kernel = T.kernel

    def work():
        total = 0.0
        for v in values:
            total += kernel(v)[0]
        return total

    benchmark(work)


def test_vector_quantize(benchmark):
    values = np.random.default_rng(0).uniform(-8, 8, size=100_000)
    result = benchmark(quantize_array, values, 12, 8)
    assert result.shape == values.shape


def test_dtype_quantize_array(benchmark):
    values = np.random.default_rng(0).uniform(-8, 8, size=100_000)
    benchmark(T.quantize_array, values)


def test_monitored_lms_simulation(benchmark):
    def run():
        ctx = DesignContext("perf", seed=0)
        with ctx:
            d = LmsEqualizerDesign()
            d.build(ctx)
            ctx.get("x").set_dtype(DType("T_input", 7, 5))
            d.run(ctx, 500)
        return ctx

    ctx = benchmark(run)
    assert ctx.get("v[3]").range_stat.count == 500


# -- trajectory harness ------------------------------------------------------

def _best_of(fn, repeats):
    """Minimum wall-clock of several calls (noise-robust point estimate)."""
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best


def measure_scalar_kernel_ns(quick):
    values = np.random.default_rng(0).uniform(-8, 8, size=1000).tolist()
    kernel = T.kernel

    def work():
        for v in values:
            kernel(v)
    return _best_of(work, 3 if quick else 7) / len(values) * 1e9


def measure_scalar_dispatch_ns(quick):
    values = np.random.default_rng(0).uniform(-8, 8, size=1000).tolist()

    def work():
        for v in values:
            quantize(v, 12, 8)
    return _best_of(work, 3 if quick else 7) / len(values) * 1e9


def measure_reference_scalar_ns(quick):
    values = np.random.default_rng(0).uniform(-8, 8, size=1000).tolist()

    def work():
        for v in values:
            quantize_info(v, 12, 8)
    return _best_of(work, 3 if quick else 7) / len(values) * 1e9


def measure_vector_msps(quick):
    size = 100_000
    values = np.random.default_rng(0).uniform(-8, 8, size=size)
    out = np.empty(size)

    def work():
        quantize_array(values, 12, 8, out=out)
    return size / _best_of(work, 5 if quick else 11) / 1e6


def measure_lms_samples_per_s(quick):
    n = 800 if quick else 3000

    def run():
        ctx = DesignContext("perf", seed=0)
        with ctx:
            d = LmsEqualizerDesign()
            d.build(ctx)
            ctx.get("x").set_dtype(DType("T_input", 7, 5))
            d.run(ctx, n)
    return n / _best_of(run, 2 if quick else 4)


def measure_lms_compiled_samples_per_s(quick):
    """Compiled-engine batch throughput on the monitored LMS design.

    Runs B=2048 lanes x n=2000 samples — a realistic refinement sweep
    shape — end-to-end through ``run_simulations(engine="compiled")``
    (lane setup, stub trace, vector execution and monitor write-back all
    included) and reports total committed samples per second.  The same
    B and n are used in quick and full mode so the CI perf gate compares
    like with like; only the repeat count differs.
    """
    from repro.parallel.runner import SimConfig, run_simulations

    B, n = 2048, 2000
    dt = DType("T_input", 7, 5)
    cfgs = [SimConfig(label="lane%d" % i, n_samples=n,
                      dtypes={"x": dt}) for i in range(B)]

    def run():
        outcomes = run_simulations(LmsEqualizerDesign, cfgs, workers=0,
                                   engine="compiled")
        if any(o.error is not None for o in outcomes):
            raise RuntimeError("compiled benchmark batch failed")
    return B * n / _best_of(run, 1 if quick else 2)


def measure_lms_obs(quick):
    """Observability cost on the monitored LMS path: A/B/A roundtrips.

    Measures the LMS throughput observability-off, on (tracing +
    per-signal metrics), and off again, and returns ``(enabled_rate,
    disabled_overhead_pct)``.  Two layers keep the overhead number
    honest on noisy hardware:

    * **structural check** — ``repro.obs`` swaps ``Sig._record`` at the
      class level instead of branching in the hot path, so after the
      roundtrip the *exact original function object* must be installed
      and ``trace.span()`` must hand out the shared no-op span.  Any
      violation (a wrapper left behind) reports as 100% overhead — a
      hard failure regardless of timings.
    * **wall clock** — per trial, disabled-before and disabled-after
      runs are interleaved (drift hits both sides equally) and compared
      on best-of times; the reported overhead is the minimum across
      trials.  A real always-on cost shows up in every trial and
      survives the minimum; one-sided scheduler noise does not.

    Being an in-process A/B, the bound is machine-independent — no
    baseline scaling needed.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.obs.trace import _NULL
    from repro.signal.signal import Sig

    n = 800 if quick else 3000
    trials = 2 if quick else 3
    rounds = 3 if quick else 4
    orig_record = Sig._record

    def run():
        ctx = DesignContext("perf", seed=0)
        with ctx:
            d = LmsEqualizerDesign()
            d.build(ctx)
            ctx.get("x").set_dtype(DType("T_input", 7, 5))
            d.run(ctx, n)

    def timed():
        t0 = time.perf_counter()
        run()
        return time.perf_counter() - t0

    run()  # warm-up
    best_enabled = None
    overhead_pct = None
    for _ in range(trials):
        t_off_before, t_on, t_off_after = [], [], []
        for _ in range(rounds):
            t_off_before.append(timed())
            obs_trace.enable()
            obs_metrics.enable()
            try:
                t_on.append(timed())
            finally:
                obs_metrics.disable()
                obs_trace.disable()
            t_off_after.append(timed())
        if best_enabled is None or min(t_on) < best_enabled:
            best_enabled = min(t_on)
        trial_pct = (min(t_off_after) - min(t_off_before)) \
            / min(t_off_before) * 100.0
        if overhead_pct is None or trial_pct < overhead_pct:
            overhead_pct = trial_pct
    overhead_pct = max(0.0, overhead_pct)

    if Sig._record is not orig_record or obs_trace.span("x") is not _NULL:
        # The switch failed to restore the hot path — that IS the
        # regression this metric exists to catch.
        overhead_pct = 100.0
    return n / best_enabled, overhead_pct


def measure_sensitivity_wallclock(quick):
    """Sensitivity sweep wall clock: serial loop vs parallel fan-out.

    On a single-CPU machine the fan-out auto-falls back to the serial
    path, so both numbers come out close — the field still documents
    the overhead/benefit on whatever machine produced the JSON.
    """
    n_samples = 150 if quick else 400
    t_in = DType("T_in", 9, 7, "tc", "saturate", "round")
    t_w = DType("T_w", 10, 9, "tc", "saturate", "round")
    types = {"y": t_w, "w": t_w, "c": t_w, "d": t_w}

    def factory():
        return LmsEqualizerDesign(seed=2024)

    def sweep(workers):
        analyze_sensitivity(factory, types, {"x": t_in},
                            n_samples=n_samples, seed=7, workers=workers)

    serial = _best_of(lambda: sweep(1), 1 if quick else 2)
    parallel = _best_of(lambda: sweep(None), 1 if quick else 2)
    return serial, parallel


def _git_rev():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or None
    except OSError:
        return None


def run_harness(quick=False):
    metrics = {
        "scalar_quantize_ns": measure_scalar_kernel_ns(quick),
        "scalar_dispatch_ns": measure_scalar_dispatch_ns(quick),
        "reference_scalar_ns": measure_reference_scalar_ns(quick),
        "vector_quantize_msps": measure_vector_msps(quick),
        "lms_samples_per_s": measure_lms_samples_per_s(quick),
        "lms_compiled_samples_per_s":
            measure_lms_compiled_samples_per_s(quick),
    }
    obs_enabled, obs_overhead = measure_lms_obs(quick)
    metrics["lms_obs_enabled_samples_per_s"] = obs_enabled
    metrics["lms_obs_disabled_overhead_pct"] = obs_overhead
    serial, par = measure_sensitivity_wallclock(quick)
    metrics["sensitivity_serial_s"] = serial
    metrics["sensitivity_parallel_s"] = par
    metrics["parallel_workers"] = default_workers()

    base = PRE_PR_BASELINE
    speedups = {
        "scalar_quantize":
            base["scalar_quantize_ns"] / metrics["scalar_quantize_ns"],
        "vector_quantize":
            metrics["vector_quantize_msps"] / base["vector_quantize_msps"],
        "lms_simulation":
            metrics["lms_samples_per_s"] / base["lms_samples_per_s"],
        "lms_compiled_vs_interpreted":
            metrics["lms_compiled_samples_per_s"]
            / metrics["lms_samples_per_s"],
        "sensitivity_parallel":
            metrics["sensitivity_serial_s"]
            / metrics["sensitivity_parallel_s"],
    }
    return {
        "schema": 1,
        "mode": "quick" if quick else "full",
        "git_rev": _git_rev(),
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": default_workers(),
        },
        "pre_pr_baseline": dict(base),
        "metrics": {k: round(v, 3) if isinstance(v, float) else v
                    for k, v in metrics.items()},
        "speedup_vs_pre_pr": {k: round(v, 2) for k, v in speedups.items()},
    }


def check_regression(current, committed, tolerance=REGRESSION_TOLERANCE):
    """Compare against a committed baseline JSON; return failure strings.

    The committed file may come from a different machine, so expected
    values are scaled by the reference-path speed ratio (the reference
    scalar path is untouched by optimizations — it measures the machine,
    not the code).
    """
    cur = current["metrics"]
    old = committed["metrics"]
    failures = []
    machine = cur["reference_scalar_ns"] / old["reference_scalar_ns"]

    expected_ns = old["scalar_quantize_ns"] * machine
    if cur["scalar_quantize_ns"] > expected_ns * (1.0 + tolerance):
        failures.append(
            "scalar_quantize_ns %.1f exceeds %.1f (baseline %.1f x "
            "machine factor %.2f, +%d%%)"
            % (cur["scalar_quantize_ns"], expected_ns * (1.0 + tolerance),
               old["scalar_quantize_ns"], machine,
               int(tolerance * 100)))
    for rate_key in ("vector_quantize_msps", "lms_samples_per_s",
                     "lms_compiled_samples_per_s"):
        if rate_key not in old or rate_key not in cur:
            continue   # baseline JSON predates this metric
        expected = old[rate_key] / machine
        floor = expected / (1.0 + tolerance)
        if cur[rate_key] < floor:
            failures.append(
                "%s %.1f below %.1f (baseline %.1f / machine factor "
                "%.2f, -%d%%)"
                % (rate_key, cur[rate_key], floor, old[rate_key], machine,
                   int(tolerance * 100)))
    # Observability guard: the in-process A/B/A roundtrip needs no
    # machine normalization — disabled obs must cost (near) nothing.
    obs_pct = cur.get("lms_obs_disabled_overhead_pct")
    if obs_pct is not None and obs_pct > OBS_DISABLED_OVERHEAD_PCT:
        failures.append(
            "lms_obs_disabled_overhead_pct %.2f exceeds the %.1f%% "
            "bound — disabling repro.obs no longer restores the "
            "original hot path" % (obs_pct, OBS_DISABLED_OVERHEAD_PCT))
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer repeats / smaller runs (CI smoke mode)")
    ap.add_argument("--out", default=None, metavar="PATH",
                    help="write BENCH_throughput.json here")
    ap.add_argument("--check", default=None, metavar="PATH",
                    help="fail (exit 1) on >30%% regression vs this "
                         "committed baseline JSON")
    args = ap.parse_args(argv)

    report = run_harness(quick=args.quick)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)

    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print("\n[written to %s]" % args.out, file=sys.stderr)

    if args.check:
        with open(args.check) as fh:
            committed = json.load(fh)
        failures = check_regression(report, committed)
        if failures:
            for f in failures:
                print("PERF REGRESSION: %s" % f, file=sys.stderr)
            return 1
        print("[perf check vs %s: ok]" % args.check, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
