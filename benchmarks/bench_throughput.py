"""A3 — Performance of the quantization kernel and the monitored simulator.

Not a paper artifact; establishes the cost envelope of this environment:

* scalar quantization calls (the per-assignment hot path),
* vectorized numpy quantization (block reference models),
* monitored LMS simulation samples per second.

These run under pytest-benchmark's normal statistics (multiple rounds).
"""

import numpy as np

from repro.core.dtype import DType
from repro.core.quantize import quantize, quantize_array
from repro.dsp.lms import LmsEqualizerDesign
from repro.signal import DesignContext

T = DType("T", 12, 8, "tc", "saturate", "round")


def test_scalar_quantize(benchmark):
    values = np.random.default_rng(0).uniform(-8, 8, size=1000).tolist()

    def work():
        total = 0.0
        for v in values:
            total += quantize(v, 12, 8)
        return total

    benchmark(work)


def test_vector_quantize(benchmark):
    values = np.random.default_rng(0).uniform(-8, 8, size=100_000)
    result = benchmark(quantize_array, values, 12, 8)
    assert result.shape == values.shape


def test_dtype_quantize_array(benchmark):
    values = np.random.default_rng(0).uniform(-8, 8, size=100_000)
    benchmark(T.quantize_array, values)


def test_monitored_lms_simulation(benchmark):
    def run():
        ctx = DesignContext("perf", seed=0)
        with ctx:
            d = LmsEqualizerDesign()
            d.build(ctx)
            ctx.get("x").set_dtype(DType("T_input", 7, 5))
            d.run(ctx, 500)
        return ctx

    ctx = benchmark(run)
    assert ctx.get("v[3]").range_stat.count == 500
