"""E4 — Paper Figure 5 / Section 6.1: the timing recovery loop.

Regenerates every quantitative claim of the complex example:

* ~61 signals subject to fixed-point refinement (ours: ~64),
* 2 MSB iterations; the feedback accumulators explode first and are put
  into saturation mode; a handful of knowledge-based saturations join
  them, while the majority of signals stay non-saturated with a sub-bit
  average MSB overhead versus the statistic-based result (paper: 0.22
  bits/signal),
* with the hardware-style wrap-typed NCO phase, exactly the "D signal
  inside the NCO" (``nco.eta``) has unstable error statistics; the
  ``error()`` annotation fixes it and one further iteration settles all
  remaining LSB weights (2 LSB iterations),
* the refined loop still locks (error-free symbol decisions after
  convergence).
"""

from conftest import once

from repro.core.dtype import DType
from repro.dsp.timing_recovery import (TimingRecoveryDesign,
                                       aligned_symbol_errors)
from repro.refine import Annotations, FlowConfig, RefinementFlow
from repro.signal import DesignContext

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
PHASE_T = DType("T_eta", 12, 12, "us", "wrap", "round")
N_SAMPLES = 8000

#: Designer-supplied saturation ranges.  ``lf.i`` (the loop-filter
#: integrator) is explosion-driven — range propagation diverges on it in
#: iteration 1, like the paper's "2 feedback signals required saturation
#: due to the MSB explosion" (the second one, the NCO phase, is bounded
#: by its preset modulo-1 wrap type).  The other five mirror the paper's
#: "knowledge-based choice".
KNOWLEDGE_RANGES = {
    "lf.i": (-0.01, 0.01),
    "nco.w": (0.35, 0.65),
    "nco.mu": (0.0, 1.0),
    "lf.out": (-0.05, 0.05),
    "lf.p": (-0.05, 0.05),
    "ted.err": (-4.0, 4.0),
}


def make_flow():
    return RefinementFlow(
        design_factory=lambda: TimingRecoveryDesign(
            noise_std=0.05, nco_phase_dtype=PHASE_T),
        input_types={"in": T_IN},
        input_ranges={"in": (-2.0, 2.0)},
        preset_types={"nco.eta": PHASE_T},
        user_ranges=dict(KNOWLEDGE_RANGES),
        user_errors={"nco.eta": 2.0 ** -12},
        config=FlowConfig(n_samples=N_SAMPLES, auto_range=True,
                          auto_error=False, seed=21),
    )


def run_flow():
    return make_flow().run()


def test_fig5_timing_recovery_refinement(benchmark, save_result):
    res = once(benchmark, run_flow)

    n_signals = len(res.lsb.final.records)
    assert 55 <= n_signals <= 70

    # --- MSB side (paper: 2 iterations, 7 saturated of 61) -------------
    assert res.msb.n_iterations == 2 and res.msb.resolved
    exploded_iter1 = res.msb.iterations[0].exploded
    assert "lf.i" in exploded_iter1
    final = res.msb.final.decisions
    saturated = sorted(n for n, d in final.items() if d.mode == "saturate")
    nonsat = [d for d in final.values()
              if d.mode != "saturate" and d.msb is not None
              and d.stat_msb is not None]
    overheads = [d.overhead_bits() for d in nonsat]
    avg_overhead = sum(overheads) / len(overheads)
    assert 0.0 <= avg_overhead < 1.0   # paper: 0.22 bits/signal

    # --- LSB side (paper: only the NCO D signal unstable) ---------------
    assert res.lsb.n_iterations == 2 and res.lsb.resolved
    assert "nco.eta" in res.lsb.iterations[0].divergent
    assert list(res.lsb.annotations) == ["nco.eta"]
    assert res.lsb.iterations[1].divergent == {}

    # --- Verification: the refined loop still locks ----------------------
    assert res.verification.total_overflows == 0
    all_types = dict(res.types)
    all_types["in"] = T_IN
    ctx = DesignContext("fig5-lock", seed=5)
    with ctx:
        d = TimingRecoveryDesign(noise_std=0.05, nco_phase_dtype=PHASE_T)
        d.build(ctx)
        Annotations(dtypes=all_types).apply(ctx)
        d.run(ctx, N_SAMPLES)
    err_rate, _lag = aligned_symbol_errors(d.tx_symbols, d.decisions,
                                           skip=1000)
    assert err_rate < 0.02

    lines = [
        "Timing recovery loop refinement (paper Fig. 5 / Section 6.1)",
        "",
        "                              paper       reproduced",
        "signals under refinement      61          %d" % n_signals,
        "MSB iterations                2           %d" % res.msb.n_iterations,
        "saturated signals             7           %d" % len(saturated),
        "  - via range() annotations   2+5         %d"
        % len(res.msb.annotations),
        "avg MSB overhead (non-sat)    0.22 b      %.2f b" % avg_overhead,
        "LSB iterations                2           %d" % res.lsb.n_iterations,
        "divergent (error()) signals   1 (NCO D)   %d (%s)"
        % (len(res.lsb.annotations), ", ".join(res.lsb.annotations)),
        "",
        "saturated: %s" % ", ".join(saturated),
        "verification: overflows=%d, wrap events(nco.eta)=%d"
        % (res.verification.total_overflows,
           res.verification.wrap_events.get("nco.eta", 0)),
        "refined-loop symbol error rate after lock: %.5f" % err_rate,
        "output SQNR: %.2f dB (inputs-only baseline %.2f dB)"
        % (res.verification.output_sqnr_db, res.baseline_sqnr_db),
    ]
    save_result("fig5_timing_recovery.txt", "\n".join(lines))
