"""E6 — Paper Figure 2: range AND error monitoring in one simulation run.

The paper's architectural point: operator overloading lets a *single*
simulation collect, simultaneously,

  (A) fixed-point values and range-monitoring information (MSB side),
  (B) error-monitoring information with error propagation (LSB side).

This bench runs the LMS equalizer once and verifies that both kinds of
statistics were gathered by the same run — then reports the cost of
monitoring versus a bare float loop.
"""

import time

from conftest import once

from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.signal import DesignContext

N = 4000


def run_monitored():
    ctx = DesignContext("fig2", seed=7)
    with ctx:
        design = LmsEqualizerDesign()
        design.build(ctx)
        ctx.get("x").set_dtype(DType("T_input", 7, 5))
        ctx.get("x").range(-1.5, 1.5)
        design.run(ctx, N)
    return ctx


def test_fig2_one_run_collects_both_monitors(benchmark, save_result):
    ctx = once(benchmark, run_monitored)

    v3 = ctx.get("v[3]")
    # (A) range monitoring happened...
    assert v3.range_stat.count == N
    assert v3.range_stat.min < 0 < v3.range_stat.max
    assert not v3.prop_interval().is_empty
    # (B) ...and error monitoring happened, in the same run.
    assert v3.err_produced.count == N
    assert v3.err_produced.std > 0
    assert v3.err_consumed.count == N

    # Bare float reference loop for the overhead figure.
    import numpy as np
    from repro.dsp.lms import pam_channel_stimulus
    t0 = time.perf_counter()
    stim = pam_channel_stimulus(2024)
    c = (-0.11, 1.2, -0.02)
    d = [0.0] * 3
    b = s = 0.0
    for _ in range(N):
        xv = next(stim)
        d = [xv, d[0], d[1]]
        v = sum(di * ci for di, ci in zip(d, c))
        w = v - b * s
        y = 1.0 if w > 0 else -1.0
        b = b + (1 / 32) * s * (w - y)
        s = y
    bare = time.perf_counter() - t0

    t0 = time.perf_counter()
    run_monitored()
    monitored = time.perf_counter() - t0

    lines = [
        "Figure 2: one overloaded-operator run collects both monitors",
        "",
        "signal v[3] after %d samples:" % N,
        "  range monitor : n=%d min=%.4f max=%.4f prop=%r" % (
            v3.range_stat.count, v3.range_stat.min, v3.range_stat.max,
            v3.prop_interval()),
        "  error monitor : n=%d mean=%.3e sigma=%.3e max=%.3e" % (
            v3.err_produced.count, v3.err_produced.mean,
            v3.err_produced.std, v3.err_produced.max_abs),
        "",
        "monitoring overhead: %.3f s vs bare float loop %.3f s (%.0fx)" % (
            monitored, bare, monitored / max(bare, 1e-9)),
    ]
    save_result("fig2_single_run.txt", "\n".join(lines))
