"""A5 — The round -> floor retyping rule (paper Section 5.2).

"The type refinement from the round-type to floor-type specification
will bring a shift of the mean measure.  If such a shift is unacceptable
the signal must stay round-typed, otherwise the floor-type is
recommended as it leads to a cheaper hardware implementation."

This bench refines the LMS equalizer twice — round everywhere versus
floor everywhere — and reports the three quantities the rule trades
off: the mean-error shift (bias approx -q/2 per quantizer), the output
SQNR, and the estimated datapath cost (floor eliminates every increment
adder).
"""

from conftest import once

from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine import Annotations, FlowConfig, LsbPolicy, RefinementFlow
from repro.refine.cost import estimate_cost
from repro.refine.monitors import collect
from repro.sfg import trace
from repro.signal import DesignContext

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")


def refine(allow_floor):
    flow = RefinementFlow(
        design_factory=LmsEqualizerDesign,
        input_types={"x": T_INPUT},
        input_ranges={"x": (-1.5, 1.5)},
        user_ranges={"b": (-0.2, 0.2)},
        config=FlowConfig(n_samples=3000, auto_range=False, seed=1234,
                          lsb_policy=LsbPolicy(allow_floor=allow_floor)),
    )
    return flow.run()


def datapath_cost(types):
    """Trace the design structure once and estimate its cost."""
    ctx = DesignContext("cost-trace", seed=0)
    with ctx:
        design = LmsEqualizerDesign()
        design.build(ctx)
        Annotations(dtypes=types).apply(ctx)
        with trace(ctx) as t:
            for i, coef in enumerate(design.coefficients):
                design.c[i] = coef
            design.run(ctx, 3)
    all_types = dict(types)
    return estimate_cost(t.sfg, all_types, inputs=["x"], outputs=["y"])


def run_comparison():
    results = {}
    for mode, allow in (("round", False), ("floor", True)):
        res = refine(allow)
        types = dict(res.types)
        types["x"] = T_INPUT
        cost = datapath_cost(types)
        mean_v3 = res.verification.records["v[3]"].err_produced.mean
        results[mode] = {
            "sqnr": res.verification.output_sqnr_db,
            "mean_v3": mean_v3,
            "cost": cost,
            "types": types,
        }
    return results


def test_floor_vs_round(benchmark, save_result):
    results = once(benchmark, run_comparison)
    rnd = results["round"]
    flr = results["floor"]

    # Floor eliminates every rounding increment adder.
    assert rnd["cost"].rounding_bits > 0
    assert flr["cost"].rounding_bits == 0
    assert flr["cost"].total() < rnd["cost"].total()

    # ...but shifts the mean difference error (fl - fx) positive: the
    # truncated values sit systematically below the reference (the
    # paper's "shift of the mu measure").
    assert flr["mean_v3"] > rnd["mean_v3"]
    assert flr["mean_v3"] > 1e-4

    # Quality cost of truncation is bounded (same wordlengths).
    assert rnd["sqnr"] - flr["sqnr"] < 6.0

    lines = [
        "round vs floor retyping on the LMS equalizer (paper Section 5.2)",
        "",
        "                         round        floor",
        "output SQNR              %7.2f dB   %7.2f dB"
        % (rnd["sqnr"], flr["sqnr"]),
        "mean error of v[3]       %+9.2e   %+9.2e"
        % (rnd["mean_v3"], flr["mean_v3"]),
        "rounding adder bits      %7d      %7d"
        % (rnd["cost"].rounding_bits, flr["cost"].rounding_bits),
        "weighted datapath cost   %7.1f      %7.1f"
        % (rnd["cost"].total(), flr["cost"].total()),
        "",
        "round-mode cost breakdown:",
        rnd["cost"].table(),
    ]
    save_result("floor_vs_round.txt", "\n".join(lines))
