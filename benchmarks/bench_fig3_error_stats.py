"""E7 — Paper Figure 3: consumed vs produced difference errors.

Figure 3 shows how one assignment derives two error statistics: the
*consumed* error (difference between the float and fixed expression
before quantization) and the *produced* error (after quantization).
Section 5.2 then audits quantized signals by comparing consumed and
produced precision.

The bench reproduces the figure's exact scenario — ``a = fixed1 * fixed2``
with ``a`` quantized through ``T = <7,5,tc>`` — and checks the audit
classification over the LMS design.
"""

import math

from conftest import once

from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine import audit_precision, collect
from repro.refine.flow import Annotations
from repro.signal import DesignContext, Sig

import numpy as np

T = DType("t", 7, 5, "tc", "saturate", "round")


def run_figure3_scenario():
    """fixed1 * fixed2 -> Q -> a, collecting eps_c and eps_p."""
    ctx = DesignContext("fig3", seed=3)
    rng = np.random.default_rng(3)
    with ctx:
        f1 = Sig("fixed1", DType("t1", 8, 6))
        f2 = Sig("fixed2", DType("t2", 8, 6))
        a = Sig("a", T)
        for _ in range(4000):
            f1.assign(rng.uniform(-1, 1))
            f2.assign(rng.uniform(-1, 1))
            a.assign(f1 * f2)
    return ctx


def test_fig3_consumed_and_produced_errors(benchmark, save_result):
    ctx = once(benchmark, run_figure3_scenario)
    a = ctx.get("a")

    # Consumed: product of two <8,6> quantized inputs.  Each input has
    # uniform error with sigma q/sqrt(12); the product error sigma is
    # roughly sqrt(2) * E[|x|] * sigma_in.
    sigma_in = (2.0 ** -6) / math.sqrt(12)
    assert a.err_consumed.count == 4000
    assert 0.3 * sigma_in < a.err_consumed.std < 3 * sigma_in

    # Produced adds a's own <7,5> rounding: dominated by q_a/sqrt(12).
    sigma_a = (2.0 ** -5) / math.sqrt(12)
    assert a.err_produced.std > a.err_consumed.std
    assert 0.5 * sigma_a < a.err_produced.std < 2 * sigma_a

    # Audit says this quantization loses precision (intentional here).
    rec = collect(ctx)["a"]
    assert audit_precision(rec) == "loss"

    # Whole-design audit over the LMS example (inputs quantized only):
    ctx2 = DesignContext("fig3-lms", seed=4)
    with ctx2:
        design = LmsEqualizerDesign()
        design.build(ctx2)
        Annotations(dtypes={"x": T}).apply(ctx2)
        design.run(ctx2, 2000)
    audits = {name: audit_precision(rec)
              for name, rec in collect(ctx2).items()}
    # Float signals consume exactly what they produce.
    assert audits["v[3]"] == "float"
    assert audits["w"] == "float"
    # The quantized input is a precision loss point (its own rounding).
    assert audits["x"] == "loss"

    lines = [
        "Figure 3: error statistics of a = Q(fixed1 * fixed2), T=<7,5,tc>",
        "",
        "  consumed  eps_c: n=%d mean=%+.3e sigma=%.3e max=%.3e" % (
            a.err_consumed.count, a.err_consumed.mean,
            a.err_consumed.std, a.err_consumed.max_abs),
        "  produced  eps_p: n=%d mean=%+.3e sigma=%.3e max=%.3e" % (
            a.err_produced.count, a.err_produced.mean,
            a.err_produced.std, a.err_produced.max_abs),
        "  audit: %s" % audit_precision(rec),
        "",
        "LMS design audit (x quantized <7,5,tc>, rest floating):",
    ] + ["  %-6s %s" % (k, v) for k, v in audits.items()]
    save_result("fig3_error_stats.txt", "\n".join(lines))
