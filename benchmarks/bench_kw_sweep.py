"""A2 — Ablation of the empirical constant ``k_w``.

Paper Section 5.2: "The k_w is the empirical constant which was found to
give optimal results for the range [1, 4].  The smaller k_w is applied,
the more conservative determination of LSB is obtained."

Sweeping ``k_w`` over [0.5 .. 8] on the LMS example shows the trade-off
the paper describes: smaller k_w -> more fractional bits -> higher SQNR
(diminishing returns below k_w ~ 1), larger k_w -> cheaper hardware with
increasing SQNR cost.
"""

from conftest import once

from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine import FlowConfig, LsbPolicy, RefinementFlow

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")
KWS = (0.5, 1.0, 2.0, 4.0, 8.0)


def run_sweep():
    rows = []
    for k_w in KWS:
        flow = RefinementFlow(
            design_factory=LmsEqualizerDesign,
            input_types={"x": T_INPUT},
            input_ranges={"x": (-1.5, 1.5)},
            user_ranges={"b": (-0.2, 0.2)},
            config=FlowConfig(n_samples=3000, auto_range=False, seed=1234,
                              lsb_policy=LsbPolicy(k_w=k_w)),
        )
        res = flow.run()
        frac_bits = sum(dt.f for dt in res.types.values())
        rows.append((k_w, frac_bits, res.total_bits(),
                     res.verification.output_sqnr_db))
    return rows


def test_kw_sweep(benchmark, save_result):
    rows = once(benchmark, run_sweep)

    frac = [r[1] for r in rows]
    sqnr = [r[3] for r in rows]
    # Smaller k_w is more conservative: fractional bits never increase
    # with k_w.
    assert frac == sorted(frac, reverse=True)
    # ...and the quality never improves when k_w grows.
    assert sqnr[0] >= sqnr[-1]
    # The paper's "optimal in [1, 4]" shape:
    idx = {k: i for i, (k, *_rest) in enumerate(rows)}
    # below 1: diminishing returns (extra bits buy almost nothing),
    assert sqnr[idx[0.5]] - sqnr[idx[1.0]] < 1.0
    # inside [1, 4]: moderate, controlled quality cost,
    assert sqnr[idx[1.0]] - sqnr[idx[4.0]] < 6.0
    # beyond 4: the quality falls off a cliff.
    assert sqnr[idx[4.0]] - sqnr[idx[8.0]] > 3.0

    lines = [
        "k_w ablation on the LMS equalizer (paper: optimal in [1, 4])",
        "",
        "k_w    frac bits   total bits   output SQNR",
    ]
    for k_w, fb, tb, s in rows:
        marker = "  <- paper range" if 1.0 <= k_w <= 4.0 else ""
        lines.append("%-6g %9d   %10d   %8.2f dB%s" % (k_w, fb, tb, s,
                                                       marker))
    save_result("kw_sweep.txt", "\n".join(lines))
