"""E8 — Paper Figure 4: the iterative design flow.

Exercises the full flow box by box on the LMS equalizer and reports the
iteration ledger: which runs happened, what each produced, which
annotation (``x.range`` / ``x.error``) closed which feedback loop, and
that the flow converges "in a few number of iterations" (the paper's
headline property: 4 monitored simulations total here, versus dozens for
a pure simulation-based search — see bench_baselines).
"""

from conftest import once

from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine import FlowConfig, RefinementFlow

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")


class CountingFlow(RefinementFlow):
    """RefinementFlow that counts monitored simulation runs."""

    def __init__(self, *a, **kw):
        super().__init__(*a, **kw)
        self.n_simulations = 0
        self.ledger = []

    def _simulate(self, annotations, label):
        self.n_simulations += 1
        self.ledger.append(label)
        return super()._simulate(annotations, label)


def run_flow():
    flow = CountingFlow(
        design_factory=LmsEqualizerDesign,
        input_types={"x": T_INPUT},
        input_ranges={"x": (-1.5, 1.5)},
        user_ranges={"b": (-0.2, 0.2)},
        config=FlowConfig(n_samples=4000, auto_range=False, seed=1234),
    )
    return flow, flow.run()


def test_fig4_flow_converges_in_few_iterations(benchmark, save_result):
    flow, res = once(benchmark, run_flow)

    # Two MSB runs + one LSB run + one verification run.
    assert flow.n_simulations == 4
    assert flow.ledger == ["msb-iter-1", "msb-iter-2", "lsb-iter-1",
                           "verify"]
    assert res.msb.resolved and res.lsb.resolved
    assert res.verification.total_overflows == 0

    lines = [
        "Figure 4: design-flow ledger on the LMS equalizer",
        "",
        "run  label        outcome",
    ]
    lines.append("1    msb-iter-1   explosion on %s"
                 % ", ".join(res.msb.iterations[0].exploded))
    lines.append("       -> annotation b.range(-0.2, 0.2) (knowledge)")
    lines.append("2    msb-iter-2   all MSB positions resolved")
    lines.append("3    lsb-iter-1   all LSB positions resolved, "
                 "no divergence")
    lines.append("4    verify       %d overflows, output SQNR %.2f dB"
                 % (res.verification.total_overflows,
                    res.verification.output_sqnr_db))
    lines.append("")
    lines.append("total monitored simulations: %d" % flow.n_simulations)
    lines.append("")
    lines.append(res.types_table())
    save_result("fig4_flow.txt", "\n".join(lines))
