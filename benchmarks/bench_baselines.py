"""A1 — The paper's Section 1 comparison, operationalized.

The paper motivates the hybrid method against two prior approaches:

* pure simulation-based [Sung & Kum 1995]: "precise results but ... long
  simulations in the case of slow convergence";
* pure analytical [Willems et al. 1997]: "results very fast, but ... a
  conservative approach which leads to overestimation of signal
  wordlengths".

Two measurements:

1. **cost** — monitored simulations needed on the LMS example: the
   hybrid's 4 versus dozens for the per-signal bisection search;
2. **overestimation** — on a 24-tap averaging FIR (where the worst-case
   input pattern is astronomically unlikely), the analytical MSBs
   exceed what simulation observes by a growing number of bits along
   the accumulation chain.
"""

import numpy as np

from conftest import once

from repro.baselines import AnalyticalRefiner, SimulationBasedOptimizer
from repro.core.dtype import DType
from repro.dsp.fir import FirFilter
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine import Design, FlowConfig, RefinementFlow
from repro.signal import Sig

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")
N = 2000
FIR_TAPS = 24


class LongFirDesign(Design):
    """24-tap boxcar average: worst case |y|=1 needs simultaneous
    same-sign extremes on all taps — simulation never sees it."""

    name = "longfir"
    inputs = ("x",)
    output = "f.v[%d]" % FIR_TAPS

    def build(self, ctx):
        self.x = Sig("x")
        self.fir = FirFilter("f", [1.0 / FIR_TAPS] * FIR_TAPS)
        rng = np.random.default_rng(17)
        self._stim = iter(rng.uniform(-1, 1, size=200000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.fir.step(self.x)
            ctx.tick()


class CountingFlow(RefinementFlow):
    n_simulations = 0

    def _simulate(self, annotations, label):
        self.n_simulations += 1
        return super()._simulate(annotations, label)


def run_all():
    # Cost comparison on the paper's LMS example.
    hybrid = CountingFlow(
        design_factory=LmsEqualizerDesign,
        input_types={"x": T_INPUT},
        input_ranges={"x": (-1.5, 1.5)},
        user_ranges={"b": (-0.2, 0.2)},
        config=FlowConfig(n_samples=N, auto_range=False, seed=1234),
    )
    hybrid_res = hybrid.run()

    sim = SimulationBasedOptimizer(
        LmsEqualizerDesign, input_types={"x": T_INPUT},
        sqnr_target_db=hybrid_res.verification.output_sqnr_db - 0.5,
        n_samples=N, f_max=14, seed=1234)
    sim_res = sim.run()

    # Overestimation comparison on the long FIR.
    fir_flow = RefinementFlow(
        LongFirDesign, input_types={"x": T_INPUT},
        input_ranges={"x": (-1.0, 1.0)},
        config=FlowConfig(n_samples=N, seed=5))
    fir_msb = fir_flow.run_msb_phase()
    fir_ana = AnalyticalRefiner(
        LongFirDesign, input_types={"x": T_INPUT},
        input_ranges={"x": (-1.0, 1.0)}).run()

    return hybrid, hybrid_res, sim_res, fir_msb, fir_ana


def test_baseline_comparison(benchmark, save_result):
    hybrid, hybrid_res, sim_res, fir_msb, fir_ana = once(benchmark, run_all)

    # The hybrid needs a handful of runs; the pure-simulation search
    # needs an order of magnitude more (per-signal bisections).
    assert hybrid.n_simulations <= 5
    assert sim_res.n_simulations > 4 * hybrid.n_simulations

    # Analytical overestimation on the averaging FIR.
    stat_msbs = {name: d.stat_msb
                 for name, d in fir_msb.final.decisions.items()
                 if d.stat_msb is not None}
    over = []
    rows = []
    for name in sorted(stat_msbs):
        if name not in fir_ana.types:
            continue
        gap = fir_ana.types[name].msb - stat_msbs[name]
        over.append(gap)
        rows.append((name, fir_ana.types[name].msb, stat_msbs[name], gap))
    assert over and min(over) >= 0
    avg_over = sum(over) / len(over)
    sums_over = [gap for name, _a, _s, gap in rows if ".v[" in name]
    avg_sums = sum(sums_over) / len(sums_over)
    # Paper: analytical = conservative = overestimation, concentrated on
    # the accumulation chain.
    assert avg_over > 0.1
    assert avg_sums >= 0.4
    assert max(over) >= 1

    lines = [
        "Method comparison (paper Section 1 claims)",
        "",
        "cost on the LMS equalizer:",
        "  method             monitored simulations",
        "  hybrid (paper)     %4d   (SQNR %.1f dB)"
        % (hybrid.n_simulations, hybrid_res.verification.output_sqnr_db),
        "  simulation-based   %4d   (SQNR %.1f dB, target %.1f dB)"
        % (sim_res.n_simulations, sim_res.output_sqnr_db,
           sim_res.sqnr_target_db),
        "  analytical            0   (no simulation at all)",
        "",
        "MSB overestimation of the analytical method on a %d-tap "
        "averaging FIR:" % FIR_TAPS,
        "  avg +%.2f bits (partial sums +%.2f), max +%d bits over the "
        "simulated ranges" % (avg_over, avg_sums, max(over)),
        "",
        "  signal        analytical  simulated  over",
    ]
    for name, a, s, gap in rows:
        lines.append("  %-12s %8d   %8d   +%d" % (name, a, s, gap))
    save_result("baseline_comparison.txt", "\n".join(lines))
