"""E3 — Paper Section 6 SQNR result.

The paper reports the SQNR of the equalizer output before the LSB
refinement (only the input ``x`` quantized to ``<7,5,tc>``) as 39.8 dB
and after refining every signal as 39.1 dB — i.e. the full fixed-point
implementation costs well under 1 dB.

Absolute numbers depend on the stimulus (ours is a synthetic PAM/ISI
channel), but the *shape* must hold: both values near 40 dB and a
sub-2 dB refinement cost.
"""

from conftest import once

from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine import FlowConfig, RefinementFlow

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")


def run_flow():
    flow = RefinementFlow(
        design_factory=LmsEqualizerDesign,
        input_types={"x": T_INPUT},
        input_ranges={"x": (-1.5, 1.5)},
        user_ranges={"b": (-0.2, 0.2)},
        config=FlowConfig(n_samples=4000, auto_range=False, seed=1234),
    )
    return flow.run()


def test_sqnr_before_after_refinement(benchmark, save_result):
    res = once(benchmark, run_flow)

    before = res.baseline_sqnr_db
    after = res.verification.output_sqnr_db
    cost = before - after

    assert 34.0 < before < 46.0, "inputs-only SQNR out of paper ballpark"
    assert 34.0 < after < 46.0, "refined SQNR out of paper ballpark"
    assert 0.0 < cost < 2.0, "refinement cost should be well under 2 dB"
    assert res.verification.total_overflows == 0

    text = "\n".join([
        "SQNR of the equalizer output v[3] (paper Section 6)",
        "",
        "                      paper       reproduced",
        "before LSB refinement 39.8 dB     %6.2f dB" % before,
        "after  LSB refinement 39.1 dB     %6.2f dB" % after,
        "refinement cost        0.7 dB     %6.2f dB" % cost,
        "",
        "verification overflows: %d" % res.verification.total_overflows,
        "total synthesized bits: %d across %d signals"
        % (res.total_bits(), len(res.types)),
    ])
    save_result("sqnr_refinement.txt", text)
