"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index), prints it, and archives it under
``benchmarks/results/`` so the artifacts survive the pytest run even
without ``-s``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Callable: save_result(name, text) -> path (also echoes to stdout)."""

    def _save(name, text):
        path = os.path.join(results_dir, name)
        with open(path, "w") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print()
        print("=" * 72)
        print(text)
        print("[saved to %s]" % path)
        return path

    return _save


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
