"""E1 — Paper Table 1: MSB analysis of the LMS equalizer.

Regenerates both iterations of the MSB analysis table exactly as the
paper reports them: per-signal assignment counts, statistic-based
min/max/msb, propagated min/max/msb (with '?' for the exploded feedback
signals in iteration 1) and the decided MSB.

Paper claims checked in-line:
* iteration 1 explodes on exactly ``w`` and ``b``;
* the single knowledge annotation ``b.range(-0.2, 0.2)`` resolves both;
* two iterations total; ``x`` has MSB 1 from ``x.range(-1.5, 1.5)``.
"""

from conftest import once

from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine import FlowConfig, RefinementFlow

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")


def run_msb_phase():
    flow = RefinementFlow(
        design_factory=LmsEqualizerDesign,
        input_types={"x": T_INPUT},
        input_ranges={"x": (-1.5, 1.5)},
        user_ranges={"b": (-0.2, 0.2)},
        config=FlowConfig(n_samples=4000, auto_range=False, seed=1234),
    )
    return flow.run_msb_phase()


def test_table1_msb_analysis(benchmark, save_result):
    msb = once(benchmark, run_msb_phase)

    # Paper: "optimized MSB values ... achieved after two iterations".
    assert msb.n_iterations == 2 and msb.resolved
    # Paper: first iteration "gave satisfactory determination of all
    # signals except for w and b" (range propagation explosion).
    assert set(msb.iterations[0].exploded) == {"w", "b"}
    # Paper: "for the second iteration b.range(-0.2,0.2) was added".
    assert msb.annotations == {"b": (-0.2, 0.2)}
    # Paper Table 1: x.range(-1.5,1.5) -> msb 1.
    assert msb.final.decisions["x"].msb == 1
    # Paper: w and b "successfully resolved" in iteration 2.
    final = msb.final.decisions
    assert final["w"].case != "explosion"
    assert final["b"].mode == "saturate"

    text = "\n\n".join(it.table() for it in msb.iterations)
    save_result("table1_msb.txt", text)
