"""A4 — Why the paper demands a final verification run (Section 4.2).

"Quantizing feedback signal paths still requires the final verification
of the system stability and precision.  This is due to effects like
limit cycles."

A high-Q low-pass biquad passes the LSB rule with flying colors — its
error statistics are small and stationary — yet the rounded recursive
node sustains a zero-input limit cycle that no statistic predicted.
This bench quantifies the cycle amplitude versus fractional wordlength
and shows the mean-error audit of the round->floor retyping rule.
"""

from conftest import once

from repro.core.dtype import DType
from repro.dsp.biquad import (Biquad, detect_limit_cycle,
                              lowpass_coefficients, zero_input_response)
from repro.signal import DesignContext

COEF = lowpass_coefficients(0.02, q=5.0)
FRACS = (6, 8, 10, 12, 14)


def run_study():
    rows = []
    for f in (None,) + FRACS:
        for lsbspec in (("round",) if f is None else ("round", "floor")):
            ctx = DesignContext("lc-%s-%s" % (f, lsbspec), seed=0)
            with ctx:
                bq = Biquad("bq", COEF)
                if f is not None:
                    dt = DType("t", f + 4, f, "tc", "saturate", lsbspec)
                    for s in bq.signals():
                        s.set_dtype(dt)
                resp = zero_input_response(bq, ctx, n_excite=64,
                                           n_observe=1500)
            lc = detect_limit_cycle(resp, settle_fraction=0.7)
            rows.append((f, lsbspec, lc))
    return rows


def test_limit_cycles_require_final_verification(benchmark, save_result):
    rows = once(benchmark, run_study)
    by_key = {(f, m): lc for f, m, lc in rows}

    # Float reference decays to silence.
    assert by_key[(None, "round")] is None
    # Every rounded fixed-point variant sustains a cycle...
    for f in FRACS:
        assert by_key[(f, "round")] is not None
    # ...whose amplitude shrinks with the LSB.
    amps = [by_key[(f, "round")].amplitude for f in FRACS]
    assert amps == sorted(amps, reverse=True)

    lines = [
        "Zero-input limit cycles of a high-Q biquad (paper Section 4.2)",
        "",
        "poles at radius %.4f; impulse excitation, then zero input"
        % (abs(COEF[4]) ** 0.5),
        "",
        "frac bits   rounding   zero-input steady state",
        "float       -          decays to zero (no cycle)",
    ]
    for f in FRACS:
        for mode in ("round", "floor"):
            lc = by_key[(f, mode)]
            desc = "decays to zero" if lc is None else str(lc)
            lines.append("%-11s %-10s %s" % (f, mode, desc))
    lines += [
        "",
        "The LSB statistics of this section are small and stationary —",
        "only the explicit zero-input verification reveals the cycles,",
        "which is exactly why the flow ends with a verification run.",
    ]
    save_result("limit_cycles.txt", "\n".join(lines))
