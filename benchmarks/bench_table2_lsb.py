"""E2 — Paper Table 2: LSB analysis of the LMS equalizer.

Regenerates the worst-case LSB determination table: per-signal
assignment counts, max-abs / mean / sigma of the produced difference
error and the inferred LSB position, with the input quantized to the
paper's ``<7,5,tc>`` format.

Paper claims checked in-line:
* one iteration resolves the LSB positions of all signals;
* the slicer output ``y`` is error-free (all-zero statistics, LSB 0);
* LSB positions track the error statistics (the paper's
  ``2**l <= k_w * sigma`` rule with k_w in [1, 4]).
"""

from conftest import once

from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine import FlowConfig, LsbPolicy, RefinementFlow

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")


def run_lsb_phase():
    flow = RefinementFlow(
        design_factory=LmsEqualizerDesign,
        input_types={"x": T_INPUT},
        input_ranges={"x": (-1.5, 1.5)},
        user_ranges={"b": (-0.2, 0.2)},
        config=FlowConfig(n_samples=4000, auto_range=False, seed=1234,
                          lsb_policy=LsbPolicy(k_w=2.0)),
    )
    msb = flow.run_msb_phase()
    return flow.run_lsb_phase(msb.annotations)


def test_table2_lsb_analysis(benchmark, save_result):
    lsb = once(benchmark, run_lsb_phase)

    # Paper: "one iteration resolved LSB positions of all signals".
    assert lsb.n_iterations == 1 and lsb.resolved

    dec = lsb.final.decisions
    # Paper Table 2: y row is all zeros with LSB 0.
    assert dec["y"].max_abs == 0.0 and dec["y"].lsb == 0
    # Error statistics drive the positions: the small-tap partial sum
    # v[1] needs more fractional bits than the full sum v[3].
    assert dec["v[1]"].lsb > dec["v[3]"].lsb
    # Every exercised signal got an LSB.
    assert all(d.lsb is not None for d in dec.values() if d.count > 0)

    save_result("table2_lsb.txt", lsb.final.table())
